"""In-place corpus migration between storage backends.

``repro corpus migrate DIR`` converts a file-layout corpus into the
SQLite (WAL) backend. The conversion is verification-gated: entries and
finding buckets are copied, re-read from the database and compared —
entry content byte-for-byte (the database stores the exact JSON line
the file layout held), finding buckets record-for-record including
occurrence counts — before a single source file is removed. A failed
verification leaves the directory untouched except for a dangling
``corpus.sqlite3`` that autodetection will shadow the moment it is
deleted; a crashed migration never deletes source files.

The canonical corpus (and its freshness metadata, when present) is
carried over as-is: a stale canonical set stays stale, a fresh one
stays fresh. The stored cmin cursor starts at zero, so the first
``minimize`` after migration performs one full scan and is incremental
from then on.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

from repro.corpus.backend import detect_backend_name
from repro.corpus.file_backend import FileCorpusBackend, entry_line
from repro.corpus.findings import record_to_dict
from repro.corpus.sqlite_backend import SqliteCorpusBackend


class MigrationError(RuntimeError):
    """A migration step failed; the source corpus was left in place."""


@dataclasses.dataclass(frozen=True)
class MigrationReport:
    """What one migration moved."""

    backend: str
    entries: int
    findings: int
    canonical: int
    removed_files: int

    def summary(self) -> str:
        return (
            f"migrated to {self.backend}: {self.entries} entr(ies),"
            f" {self.findings} finding bucket(s),"
            f" {self.canonical} canonical entr(ies)"
            f" ({self.removed_files} source file(s) removed)"
        )


def migrate_to_sqlite(root) -> MigrationReport:
    """Convert the file corpus at *root* to the SQLite backend, in place.

    Safe on an empty or missing directory (creates an empty database,
    so subsequent writers autodetect SQLite). Idempotent-ish: running
    it on an already-SQLite corpus raises instead of double-converting.

    :raises MigrationError: when the directory is already
        SQLite-backed, or when post-copy verification fails (source
        files are then left untouched).
    """
    root = Path(root)
    if detect_backend_name(root) == "sqlite":
        raise MigrationError(f"{root} is already an SQLite corpus")
    source = FileCorpusBackend(root)
    target = SqliteCorpusBackend(root)

    entries = source.entries()
    records = source.finding_records()
    canonical = source.canonical_entries()
    try:
        # Create the database even for an empty source: its presence is
        # what flips autodetection for every subsequent writer.
        target._connect(create=True)
        for entry in entries:
            target.add_entry(entry)
        for record in records:
            target.record_finding(record)
        _copy_canonical(source, target, canonical)
        _verify(source, target, entries, records, canonical)
    except Exception:
        # Any failure — verification or an unexpected copy error — must
        # not leave a partial database behind: autodetection would
        # prefer it and silently shadow the intact file layout.
        target.close()
        target.database_path.unlink(missing_ok=True)
        raise
    removed = _remove_source_files(source)
    target.close()
    return MigrationReport(
        backend="sqlite",
        entries=len(entries),
        findings=len(records),
        canonical=len(canonical),
        removed_files=removed,
    )


def _copy_canonical(
    source: FileCorpusBackend, target: SqliteCorpusBackend, canonical
) -> None:
    """Carry over canonical membership and its freshness marker."""
    if not canonical:
        return
    connection = target._connect(create=True)
    with connection:
        connection.executemany(
            "INSERT OR IGNORE INTO canonical (entry_id) VALUES (?)",
            [(entry.entry_id,) for entry in canonical],
        )
        if source.canonical_meta_path.is_file():
            try:
                meta = json.loads(
                    source.canonical_meta_path.read_text(encoding="utf-8")
                )
                rows = [
                    ("cmin_entry_count", str(int(meta["entry_count"]))),
                    ("cmin_max_entry_id", str(meta["max_entry_id"])),
                ]
            except (ValueError, KeyError, TypeError):
                rows = []
            connection.executemany(
                "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)", rows
            )


def _verify(source, target, entries, records, canonical) -> None:
    """Byte-equal entries, identical finding buckets, same canonical set."""
    migrated = {entry.entry_id: entry for entry in target.entries()}
    if len(migrated) != len(entries):
        raise MigrationError(
            f"entry count mismatch after copy:"
            f" {len(entries)} source, {len(migrated)} migrated"
        )
    for entry in entries:
        twin = migrated.get(entry.entry_id)
        if twin is None or entry_line(twin) != entry_line(entry):
            raise MigrationError(
                f"entry {entry.entry_id} did not survive migration byte-equal"
            )
    migrated_records = {
        record.bucket_id: record for record in target.finding_records()
    }
    if len(migrated_records) != len(records):
        raise MigrationError("finding bucket count mismatch after copy")
    for record in records:
        twin = migrated_records.get(record.bucket_id)
        if twin is None or record_to_dict(twin) != record_to_dict(record):
            raise MigrationError(
                f"finding bucket {record.bucket_id} did not survive migration"
            )
    if [e.entry_id for e in target.canonical_entries()] != sorted(
        entry.entry_id for entry in canonical
    ):
        raise MigrationError("canonical set mismatch after copy")


def _remove_source_files(source: FileCorpusBackend) -> int:
    """Delete the migrated JSON layout (entries, findings, canonical)."""
    removed = 0
    for directory in (source.entries_dir, source.findings_dir):
        if not directory.is_dir():
            continue
        for path in directory.iterdir():
            path.unlink()
            removed += 1
        directory.rmdir()
    for path in (source.canonical_path, source.canonical_meta_path):
        if path.is_file():
            path.unlink()
            removed += 1
    return removed


__all__ = [
    "MigrationError",
    "MigrationReport",
    "migrate_to_sqlite",
]
