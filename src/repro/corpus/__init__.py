"""Coverage-guided corpus: persistent findings + cross-campaign seeds.

The corpus subsystem makes campaigns stateful *across* runs:

* :class:`~repro.corpus.store.CorpusStore` persists the packet
  sequences that unlocked state/transition coverage, content-addressed
  and ``cmin``-minimisable into a canonical seed set;
* :class:`~repro.corpus.findings.FindingDatabase` buckets crashes by
  ``(vendor, class, minimised-trigger hash)`` and deduplicates them
  across runs;
* both are facades over a pluggable
  :class:`~repro.corpus.backend.CorpusBackend` — atomic JSON files by
  default, SQLite (WAL) for heavy parallel ingestion — autodetected
  per corpus directory and convertible in place with
  :func:`~repro.corpus.migrate.migrate_to_sqlite`
  (``repro corpus migrate``);
* :class:`~repro.corpus.scheduler.EnergyScheduler` feeds visit counts
  (campaign-local plus corpus prior) back into mutation scheduling;
* :mod:`~repro.corpus.replay` re-fires stored entries and findings
  against fresh targets, deterministically.
"""

from repro.corpus.backend import (
    BACKEND_NAMES,
    CorpusBackend,
    CorpusStats,
    detect_backend_name,
    open_backend,
)
from repro.corpus.entry import CorpusEntry, content_id, transition_token
from repro.corpus.findings import FindingDatabase, FindingRecord
from repro.corpus.migrate import MigrationError, migrate_to_sqlite
from repro.corpus.replay import replay_entry, replay_finding
from repro.corpus.scheduler import EnergyScheduler, prior_from_corpus
from repro.corpus.store import CorpusStore, record_campaign

__all__ = [
    "BACKEND_NAMES",
    "CorpusBackend",
    "CorpusEntry",
    "CorpusStats",
    "CorpusStore",
    "EnergyScheduler",
    "FindingDatabase",
    "FindingRecord",
    "MigrationError",
    "content_id",
    "detect_backend_name",
    "migrate_to_sqlite",
    "open_backend",
    "prior_from_corpus",
    "record_campaign",
    "replay_entry",
    "replay_finding",
    "transition_token",
]
