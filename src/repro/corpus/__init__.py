"""Coverage-guided corpus: persistent findings + cross-campaign seeds.

The corpus subsystem makes campaigns stateful *across* runs:

* :class:`~repro.corpus.store.CorpusStore` persists the packet
  sequences that unlocked state/transition coverage, content-addressed
  and ``cmin``-minimisable into a canonical seed set;
* :class:`~repro.corpus.findings.FindingDatabase` buckets crashes by
  ``(vendor, class, minimised-trigger hash)`` and deduplicates them
  across runs;
* :class:`~repro.corpus.scheduler.EnergyScheduler` feeds visit counts
  (campaign-local plus corpus prior) back into mutation scheduling;
* :mod:`~repro.corpus.replay` re-fires stored entries and findings
  against fresh targets, deterministically.
"""

from repro.corpus.entry import CorpusEntry, content_id, transition_token
from repro.corpus.findings import FindingDatabase, FindingRecord
from repro.corpus.replay import replay_entry, replay_finding
from repro.corpus.scheduler import EnergyScheduler, prior_from_corpus
from repro.corpus.store import CorpusStore, record_campaign

__all__ = [
    "CorpusEntry",
    "CorpusStore",
    "EnergyScheduler",
    "FindingDatabase",
    "FindingRecord",
    "content_id",
    "prior_from_corpus",
    "record_campaign",
    "replay_entry",
    "replay_finding",
    "transition_token",
]
