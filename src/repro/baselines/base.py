"""Common scaffolding for the baseline Bluetooth fuzzers (paper §IV, §VI).

The paper compares L2Fuzz with three tools — Defensics, BFuzz and the
Bluetooth Stack Smasher — by running each against the same target and
measuring mutation efficiency and state coverage from the packet trace.
The tools themselves are closed or ancient, so we re-implement their
*documented mutation strategies*:

* BSS "simply mutates only one field of a packet";
* BFuzz "mutates packets that have previously been determined to be
  vulnerable; however, because it mutates almost every field, it is
  easily rejected";
* Defensics is a conformance-style suite where "most of the test packets
  are normal packets" and "only tests one packet per state".

Each baseline drives the same :class:`~repro.core.packet_queue.PacketQueue`
as L2Fuzz, so the sniffer trace and metrics are directly comparable.
"""

from __future__ import annotations

import abc
import random

from repro.core.packet_queue import PacketQueue
from repro.errors import TransportError
from repro.l2cap.packets import L2capPacket


class BaselineFuzzer(abc.ABC):
    """One comparison fuzzer.

    :param queue: packet queue to the target (owns the trace).
    :param seed: RNG seed for deterministic runs.
    """

    #: Human-readable tool name.
    name: str = "baseline"
    #: Transmission throughput the paper measured for this tool (§IV.C).
    pps: float = 1.0

    def __init__(self, queue: PacketQueue, seed: int = 0x1202) -> None:
        self.queue = queue
        self.rng = random.Random(seed)
        self.stopped_by_error: TransportError | None = None

    def run(self, max_packets: int) -> None:
        """Transmit until *max_packets* have been sent (or the target dies)."""
        try:
            while self.queue.sniffer.transmitted_count() < max_packets:
                self.run_cycle(max_packets)
        except TransportError as error:
            self.stopped_by_error = error

    @abc.abstractmethod
    def run_cycle(self, max_packets: int) -> None:
        """Run one test cycle (a tool-specific packet sequence)."""

    # -- shared helpers -----------------------------------------------------------

    def _budget_left(self, max_packets: int) -> int:
        return max_packets - self.queue.sniffer.transmitted_count()

    def _send(self, packet: L2capPacket) -> list[L2capPacket]:
        """Send and collect responses (baselines all poll synchronously)."""
        return self.queue.exchange(packet)
