"""BFuzz model (IoTcube's Bluetooth module; paper refs [3]).

BFuzz replays traffic templates "previously determined to be vulnerable"
— long captured blobs of ACL data — and then mutates the signaling
packets in them, "mutating almost every field" except the fixed ones.
Corrupting the dependent fields (lengths, identifiers) makes the target
answer "command not understood" for nearly everything, which is exactly
the paper's measurement: MP Ratio ≈ 1.5% (the replayed data dwarfs the
mutations) and PR Ratio ≈ 91.6% (almost every mutation is rejected).

Its valid replay skeleton does exercise a connection + configuration +
teardown, giving it six observable states.
"""

from __future__ import annotations

from repro.baselines.base import BaselineFuzzer
from repro.core.packet_queue import PacketQueue
from repro.l2cap.constants import (
    CONNECTIONLESS_CID,
    CommandCode,
    ConnectionResult,
    Psm,
)
from repro.l2cap.packets import (
    COMMAND_SPECS,
    L2capPacket,
    configuration_request,
    configuration_response,
    connection_request,
    disconnection_request,
)


class BfuzzFuzzer(BaselineFuzzer):
    """Replay-and-corrupt fuzzer: tiny MP ratio, huge PR ratio."""

    name = "BFuzz"
    pps = 454.54

    #: ACL data frames replayed per cycle (the captured blob).
    REPLAY_FRAMES = 5300
    #: Mutated signaling packets per cycle.
    MUTATIONS = 80
    #: Probability a mutation corrupts the dependent length fields (and is
    #: therefore rejected as "command not understood").
    LENGTH_CORRUPTION_RATE = 0.96

    #: Signaling commands present in the replay templates.
    TEMPLATE_CODES = (
        CommandCode.CONNECTION_REQ,
        CommandCode.CONFIGURATION_REQ,
        CommandCode.CONFIGURATION_RSP,
        CommandCode.DISCONNECTION_REQ,
        CommandCode.ECHO_REQ,
    )

    def __init__(self, queue: PacketQueue, seed: int = 0x1202, base_cid: int = 0x3000) -> None:
        super().__init__(queue, seed)
        self._next_cid = base_cid

    def run_cycle(self, max_packets: int) -> None:
        """One replay cycle: data blob, valid skeleton, mutation burst."""
        self._replay_blob(max_packets)
        if self._budget_left(max_packets) <= 0:
            return
        self._valid_skeleton(max_packets)
        for _ in range(self.MUTATIONS):
            if self._budget_left(max_packets) <= 0:
                return
            self._send(self._mutate_template())

    # -- cycle pieces ------------------------------------------------------------

    def _replay_blob(self, max_packets: int) -> None:
        """Replay the captured ACL-data payload (elicits no responses)."""
        count = min(self.REPLAY_FRAMES, self._budget_left(max_packets))
        for _ in range(count):
            payload = bytes(self.rng.getrandbits(8) for _ in range(8))
            self._send(
                L2capPacket(
                    code=0x00,
                    identifier=0,
                    header_cid=CONNECTIONLESS_CID,
                    tail=payload,
                )
            )

    def _valid_skeleton(self, max_packets: int) -> None:
        """The valid part of the replayed template: connect + configure."""
        our_cid = self._take_cid()
        responses = self._send(
            connection_request(
                psm=Psm.SDP, scid=our_cid, identifier=self.queue.take_identifier()
            )
        )
        target_cid = 0
        for response in responses:
            if (
                response.code == CommandCode.CONNECTION_RSP
                and response.fields.get("result") == ConnectionResult.SUCCESS
            ):
                target_cid = response.fields.get("dcid", 0)
        if not target_cid or self._budget_left(max_packets) <= 0:
            return
        responses = self._send(
            configuration_request(
                dcid=target_cid, identifier=self.queue.take_identifier()
            )
        )
        for response in responses:
            if response.code == CommandCode.CONFIGURATION_REQ:
                self._send(
                    configuration_response(
                        scid=target_cid, identifier=response.identifier
                    )
                )
        self._send(
            disconnection_request(
                dcid=target_cid, scid=our_cid, identifier=self.queue.take_identifier()
            )
        )

    def _mutate_template(self) -> L2capPacket:
        """Mutate almost every field of a template signaling packet."""
        code = self.rng.choice(self.TEMPLATE_CODES)
        packet = L2capPacket(code, identifier=self.rng.randrange(0, 256))
        for name in packet.field_names():
            field = COMMAND_SPECS[code].field(name)
            packet.fields[name] = self.rng.randrange(0, field.max_value + 1)
        if self.rng.random() < self.LENGTH_CORRUPTION_RATE:
            # Corrupting D is what gets BFuzz rejected wholesale. The
            # Data Length is deflated (an inflated Payload Length would
            # stall ACL recombination and never even reach the parser).
            packet.declared_data_len = self.rng.randrange(0, 4)
        if self.rng.random() < 0.5:
            packet.garbage = bytes(
                self.rng.getrandbits(8) for _ in range(self.rng.randint(1, 8))
            )
        return packet

    def _take_cid(self) -> int:
        cid = self._next_cid
        self._next_cid += 1
        if self._next_cid > 0xFFFF:
            self._next_cid = 0x3000
        return cid
