"""Bluetooth Stack Smasher model (Betouin 2006; paper refs [4]).

BSS predates stateful fuzzing: it hammers the target with L2CAP
commands built from the Bluetooth 2.1 vocabulary, varying **one field at
a time** — and that field is the echo/info payload or a value that stays
within its legal range, which is why the paper measures *zero* malformed
packets and *zero* rejections for it (§IV.C: "the BSS did not generate
any malformed packets"). Its state reach is three states: the target is
only ever observed CLOSED, accepting a connection (WAIT_CONNECT) and
sitting unconfigured (WAIT_CONFIG).
"""

from __future__ import annotations

from repro.baselines.base import BaselineFuzzer
from repro.l2cap.constants import CommandCode, ConnectionResult, InfoType, Psm
from repro.l2cap.packets import (
    connection_request,
    disconnection_request,
    echo_request,
    information_request,
)


class BssFuzzer(BaselineFuzzer):
    """One-field-at-a-time smasher: all-valid traffic, three states."""

    name = "BSS"
    pps = 1.95

    #: Payload sizes swept by the echo loop (the "one field" it varies).
    ECHO_SIZES = (0, 1, 4, 8, 16, 23, 32, 41)

    def __init__(self, queue, seed: int = 0x1202, base_cid: int = 0x2000) -> None:
        super().__init__(queue, seed)
        self._next_cid = base_cid

    def run_cycle(self, max_packets: int) -> None:
        """One BSS pass: echo sweep, info sweep, connect+disconnect."""
        for size in self.ECHO_SIZES:
            if self._budget_left(max_packets) <= 0:
                return
            payload = bytes((self.rng.getrandbits(8),)) * size
            self._send(echo_request(payload, identifier=self.queue.take_identifier()))

        for info_type in (
            InfoType.CONNECTIONLESS_MTU,
            InfoType.EXTENDED_FEATURES,
            InfoType.FIXED_CHANNELS,
        ):
            if self._budget_left(max_packets) <= 0:
                return
            self._send(
                information_request(info_type, identifier=self.queue.take_identifier())
            )

        if self._budget_left(max_packets) <= 0:
            return
        self._connect_probe()

    def _connect_probe(self) -> None:
        """Valid SDP connect followed by a polite disconnect."""
        our_cid = self._next_cid
        self._next_cid += 1
        if self._next_cid > 0xFFFF:
            self._next_cid = 0x2000
        responses = self._send(
            connection_request(
                psm=Psm.SDP, scid=our_cid, identifier=self.queue.take_identifier()
            )
        )
        for response in responses:
            if (
                response.code == CommandCode.CONNECTION_RSP
                and response.fields.get("result") == ConnectionResult.SUCCESS
            ):
                self._send(
                    disconnection_request(
                        dcid=response.fields.get("dcid", 0),
                        scid=our_cid,
                        identifier=self.queue.take_identifier(),
                    )
                )
