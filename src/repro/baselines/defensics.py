"""Defensics model (Synopsys commercial fuzzer; paper refs [2]).

Defensics is a conformance-test-style fuzzer: long sequences of entirely
valid protocol exchanges with a single *anomalized* test case injected
per protocol state — "most of the test packets are normal packets ...
instead of yielding unexpected behaviors, it often results in normal
communication" (§VI), and "Defensics only tests one packet per state"
(§IV.C). The paper measures MP ≈ 2.38%, PR ≈ 1.73%, 3.37 pps and seven
covered states.
"""

from __future__ import annotations

from repro.baselines.base import BaselineFuzzer
from repro.core.packet_queue import PacketQueue
from repro.l2cap.constants import (
    CommandCode,
    ConfigResult,
    ConnectionResult,
    InfoType,
    Psm,
)
from repro.l2cap.packets import (
    L2capPacket,
    configuration_request,
    configuration_response,
    connection_request,
    disconnection_request,
    echo_request,
    information_request,
)


class DefensicsFuzzer(BaselineFuzzer):
    """Conformance-suite fuzzer: mostly valid, one anomaly per state."""

    name = "Defensics"
    pps = 3.37

    #: Echo payload sizes swept during the valid conformance passes.
    ECHO_SWEEP = tuple(range(0, 44, 2))
    #: Valid conformance iterations between anomaly injections.
    CONFORMANCE_PASSES = 5

    def __init__(self, queue: PacketQueue, seed: int = 0x1202, base_cid: int = 0x4000) -> None:
        super().__init__(queue, seed)
        self._next_cid = base_cid

    def run_cycle(self, max_packets: int) -> None:
        """One suite cycle: conformance passes plus per-state anomalies."""
        for _ in range(self.CONFORMANCE_PASSES):
            if self._budget_left(max_packets) <= 0:
                return
            self._conformance_pass(max_packets)
        if self._budget_left(max_packets) > 0:
            self._config_rejection_case(max_packets)
        self._anomaly_pass(max_packets)

    # -- valid conformance traffic ---------------------------------------------------

    def _conformance_pass(self, max_packets: int) -> None:
        """Echo/info sweeps plus a full connect-configure-teardown."""
        for size in self.ECHO_SWEEP:
            if self._budget_left(max_packets) <= 0:
                return
            self._send(
                echo_request(b"\x55" * size, identifier=self.queue.take_identifier())
            )
        for info_type in (InfoType.CONNECTIONLESS_MTU, InfoType.EXTENDED_FEATURES):
            if self._budget_left(max_packets) <= 0:
                return
            self._send(
                information_request(info_type, identifier=self.queue.take_identifier())
            )
        self._open_and_close(max_packets)

    def _open_and_close(self, max_packets: int) -> tuple[int, int]:
        """Valid connection + both-direction configuration + teardown."""
        our_cid = self._take_cid()
        responses = self._send(
            connection_request(
                psm=Psm.SDP, scid=our_cid, identifier=self.queue.take_identifier()
            )
        )
        target_cid = 0
        for response in responses:
            if (
                response.code == CommandCode.CONNECTION_RSP
                and response.fields.get("result") == ConnectionResult.SUCCESS
            ):
                target_cid = response.fields.get("dcid", 0)
        if not target_cid or self._budget_left(max_packets) <= 0:
            return 0, 0
        responses = self._send(
            configuration_request(
                dcid=target_cid, identifier=self.queue.take_identifier()
            )
        )
        for response in responses:
            if response.code == CommandCode.CONFIGURATION_REQ:
                self._send(
                    configuration_response(
                        scid=target_cid, identifier=response.identifier
                    )
                )
        if self._budget_left(max_packets) > 0:
            self._send(
                disconnection_request(
                    dcid=target_cid,
                    scid=our_cid,
                    identifier=self.queue.take_identifier(),
                )
            )
        return our_cid, target_cid

    def _config_rejection_case(self, max_packets: int) -> None:
        """Conformance case: reject the target's configuration parameters.

        A conformant target initiates its own disconnect (entering
        WAIT_DISCONNECT), which the suite answers — the seventh state
        Defensics exercises.
        """
        our_cid = self._take_cid()
        responses = self._send(
            connection_request(
                psm=Psm.SDP, scid=our_cid, identifier=self.queue.take_identifier()
            )
        )
        target_cid = 0
        for response in responses:
            if (
                response.code == CommandCode.CONNECTION_RSP
                and response.fields.get("result") == ConnectionResult.SUCCESS
            ):
                target_cid = response.fields.get("dcid", 0)
        if not target_cid or self._budget_left(max_packets) <= 0:
            return
        responses = self._send(
            configuration_request(
                dcid=target_cid, identifier=self.queue.take_identifier()
            )
        )
        device_req = next(
            (r for r in responses if r.code == CommandCode.CONFIGURATION_REQ), None
        )
        if device_req is None or self._budget_left(max_packets) <= 0:
            return
        responses = self._send(
            configuration_response(
                scid=target_cid,
                result=ConfigResult.REJECTED,
                identifier=device_req.identifier,
            )
        )
        disconnect = next(
            (r for r in responses if r.code == CommandCode.DISCONNECTION_REQ), None
        )
        if disconnect is not None and self._budget_left(max_packets) > 0:
            self._send(
                L2capPacket(
                    CommandCode.DISCONNECTION_RSP,
                    disconnect.identifier,
                    {
                        "dcid": disconnect.fields.get("dcid", 0),
                        "scid": disconnect.fields.get("scid", 0),
                    },
                )
            )

    # -- anomaly injection -------------------------------------------------------------

    def _anomaly_pass(self, max_packets: int) -> None:
        """One anomalized test case per covered protocol state."""
        anomalies = (
            self._anomaly_closed,
            self._anomaly_connect,
            self._anomaly_config,
            self._anomaly_open,
            self._anomaly_disconnect,
        )
        for anomaly in anomalies:
            if self._budget_left(max_packets) <= 0:
                return
            anomaly()

    def _anomaly_closed(self) -> None:
        """CLOSED-state anomaly: an over-length echo (length corruption)."""
        packet = echo_request(b"\xAA" * 8, identifier=self.queue.take_identifier())
        packet.declared_data_len = 2  # corrupt the dependent length field
        self._send(packet)

    def _anomaly_connect(self) -> None:
        """Connect anomaly: reserved PSM value."""
        self._send(
            connection_request(
                psm=0x0100, scid=self._take_cid(), identifier=self.queue.take_identifier()
            )
        )

    def _anomaly_config(self) -> None:
        """Config anomaly: configuration for a never-allocated channel."""
        self._send(
            configuration_request(
                dcid=0xFF00, identifier=self.queue.take_identifier()
            )
        )

    def _anomaly_open(self) -> None:
        """OPEN-state anomaly: unsolicited configuration response."""
        self._send(
            configuration_response(
                scid=0xFF00,
                result=ConfigResult.SUCCESS,
                identifier=self.queue.take_identifier(),
            )
        )

    def _anomaly_disconnect(self) -> None:
        """Disconnect anomaly: teardown of a never-allocated channel."""
        self._send(
            L2capPacket(
                CommandCode.DISCONNECTION_REQ,
                self.queue.take_identifier(),
                {"dcid": 0xFEFE, "scid": 0xFDFD},
            )
        )

    def _take_cid(self) -> int:
        cid = self._next_cid
        self._next_cid += 1
        if self._next_cid > 0xFFFF:
            self._next_cid = 0x4000
        return cid
