"""Baseline Bluetooth fuzzers the paper compares against."""

from repro.baselines.base import BaselineFuzzer
from repro.baselines.bfuzz import BfuzzFuzzer
from repro.baselines.bss import BssFuzzer
from repro.baselines.defensics import DefensicsFuzzer

__all__ = ["BaselineFuzzer", "BfuzzFuzzer", "BssFuzzer", "DefensicsFuzzer"]
