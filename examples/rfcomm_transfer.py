#!/usr/bin/env python3
"""Transfer the methodology to RFCOMM (paper §V, "Applicability to other
protocols").

Runs the *same* campaign engine that fuzzes L2CAP against a target's
RFCOMM multiplexer, via the protocol-agnostic ``FuzzTarget`` API: state
guiding walks the mux states (control DLCI → data DLCI) with valid
frames, and core-field mutating randomises only the DLCI while keeping
the FCS and length valid — plus the garbage tail beyond the declared
frame end, which is exactly what pulls the trigger on the injected UIH
reassembly overflow.

Run with::

    python examples/rfcomm_transfer.py
"""

from __future__ import annotations

from repro.core.config import FuzzConfig
from repro.testbed.profiles import D5
from repro.testbed.session import FuzzSession


def main() -> None:
    print("Fuzzing D5's RFCOMM mux with the shared campaign engine")
    session = FuzzSession(
        D5, FuzzConfig(max_packets=4000, seed=7), target="rfcomm"
    )
    report = session.run()
    mux = session.device.rfcomm_mux

    print(report.summary())
    print(f"   mux frames accepted : {mux.frames_accepted}")
    print(f"   mux frames rejected : {mux.frames_rejected}")

    if report.findings and session.device.crash_dumps:
        finding = report.findings[0]
        print("\nRecovered crash dump:")
        print(session.device.crash_dumps[0])
        print(
            f"\nFinding key (dedupes fleet- and corpus-wide): "
            f"{finding.key(session.profile.vendor)}"
        )
        print(
            "The same two techniques that found the L2CAP zero-days "
            "(§IV) found this RFCOMM bug — the §V transfer claim."
        )


if __name__ == "__main__":
    main()
