#!/usr/bin/env python3
"""Transfer the methodology to RFCOMM (paper §V, "Applicability to other
protocols").

Builds an earbud-like target whose RFCOMM multiplexer hides a UIH
reassembly overflow, then runs the transferred fuzzer: state guiding
walks the mux states (control DLCI → data DLCI) with valid frames, and
core-field mutating randomises only the DLCI while keeping the FCS and
length valid — plus the garbage tail beyond the declared frame end,
which is exactly what pulls the trigger.

Run with::

    python examples/rfcomm_transfer.py
"""

from __future__ import annotations

from repro.core.packet_queue import PacketQueue
from repro.hci.transport import VirtualLink
from repro.l2cap.constants import CommandCode, ConnectionResult, Psm
from repro.l2cap.packets import connection_request
from repro.rfcomm import RfcommFuzzer, RfcommMux
from repro.stack.device import DeviceMeta, VirtualDevice
from repro.stack.services import ServiceDirectory, ServiceRecord
from repro.stack.vendors import RTKIT


def build_target():
    """An earbud exposing an unpaired serial port with a buggy mux."""
    mux = RfcommMux(server_channels=(1,), vulnerable=True)
    services = ServiceDirectory(
        [
            ServiceRecord(Psm.SDP, "SDP"),
            ServiceRecord(Psm.RFCOMM, "Serial Port"),
        ]
    )
    device = VirtualDevice(
        meta=DeviceMeta("9C:64:8B:00:00:42", "budz-pro", "earphone"),
        personality=RTKIT,
        services=services,
    )
    device.engine.data_handlers[Psm.RFCOMM] = mux.handle_payload
    link = VirtualLink(clock=device.clock)
    device.attach_to(link)
    return device, mux, PacketQueue(link)


def main() -> None:
    device, mux, queue = build_target()

    print("Step 1 — L2CAP substrate: connect to PSM 0x0003 (RFCOMM)")
    responses = queue.exchange(connection_request(psm=Psm.RFCOMM, scid=0x0090))
    rsp = next(r for r in responses if r.code == CommandCode.CONNECTION_RSP)
    assert rsp.fields["result"] == ConnectionResult.SUCCESS
    target_cid = rsp.fields["dcid"]
    print(f"   channel up (our CID 0x0090, target CID 0x{target_cid:04X})")

    print("Step 2 — state guiding + core field mutating on the RFCOMM mux")
    fuzzer = RfcommFuzzer(queue, our_cid=0x0090, target_cid=target_cid, seed=7)
    report = fuzzer.run(per_type=8)

    print(f"   frames sent     : {report.frames_sent}")
    print(f"   accepted (UA)   : {report.accepted}")
    print(f"   rejected (DM)   : {report.rejected}")
    print(f"   target crashed  : {report.crashed} ({report.crash_error})")

    if report.crashed and device.crash_dumps:
        print("\nStep 3 — recovered crash dump:")
        print(device.crash_dumps[0])
        print(
            "The same two techniques that found the L2CAP zero-days "
            "(§IV) found this RFCOMM bug — the §V transfer claim."
        )


if __name__ == "__main__":
    main()
