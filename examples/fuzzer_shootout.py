#!/usr/bin/env python3
"""Four-fuzzer shootout: regenerate the paper's comparison (§IV.C/D).

Runs L2Fuzz, Defensics, BFuzz and BSS against the disarmed D2 reference
phone and prints Table VII, the Fig. 8/9 final points, and the Fig. 10
coverage bars — a scaled-down version of the benchmark harness suitable
for a quick look.

Run with::

    python examples/fuzzer_shootout.py [packet-budget]
"""

from __future__ import annotations

import sys

from repro.analysis.comparison import (
    figure10_bars,
    figure11_maps,
    run_comparison,
    table7_rows,
)


def main() -> None:
    budget = int(sys.argv[1]) if len(sys.argv) > 1 else 20_000
    print(f"Running the four fuzzers vs D2 (Pixel 3), {budget} packets each...\n")
    results = run_comparison(max_packets=budget)

    print("Table VII — mutation efficiency")
    print(f"{'fuzzer':<11}{'MP%':>8}{'PR%':>8}{'eff%':>8}{'pps':>9}")
    for row in table7_rows(results):
        print(
            f"{row['fuzzer']:<11}{row['mp_ratio']:>8}{row['pr_ratio']:>8}"
            f"{row['mutation_efficiency']:>8}{row['pps']:>9}"
        )

    print("\nFig. 8/9 — final cumulative points")
    for name, result in results.items():
        mp = result.mp_points[-1]
        pr = result.pr_points[-1]
        print(
            f"{name:<11} malformed {mp.y:>6}/{mp.x:<6}  "
            f"rejections {pr.y:>6}/{pr.x:<6}"
        )

    print("\nFig. 10 — state coverage (of 19)")
    for name, count in figure10_bars(results).items():
        print(f"{name:<11} {count:>2}  {'#' * count}")

    print("\nFig. 11 — states only L2Fuzz reaches")
    maps = figure11_maps(results)
    others = set().union(*(maps[n] for n in maps if n != "L2Fuzz"))
    unique = sorted(set(maps["L2Fuzz"]) - others)
    for state in unique:
        print(f"  {state}")


if __name__ == "__main__":
    main()
