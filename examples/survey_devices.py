#!/usr/bin/env python3
"""Survey the whole testbed: regenerate Table VI end to end.

Runs a full armed campaign against each of the eight Table V device
profiles and prints the reproduced Table VI. D8 (BlueZ) hides the rare
general-protection-fault bug, so its campaign is long — pass a smaller
budget to trade fidelity for speed.

Run with::

    python examples/survey_devices.py [d8-budget]
"""

from __future__ import annotations

import sys
import time

from repro import FuzzConfig, run_campaign
from repro.testbed import ALL_PROFILES


def main() -> None:
    d8_budget = int(sys.argv[1]) if len(sys.argv) > 1 else 250_000
    header = (
        f"{'No.':<5}{'Name':<16}{'Stack':<15}{'Vuln?':<7}"
        f"{'Description':<13}{'Elapsed (sim)':<15}{'State':<22}"
    )
    print(header)
    print("-" * len(header))

    for profile in ALL_PROFILES:
        budget = d8_budget if profile.device_id == "D8" else 40_000
        started = time.perf_counter()
        report = run_campaign(profile, FuzzConfig(max_packets=budget))
        wall = time.perf_counter() - started
        row = report.as_table6_row()
        finding = report.first_finding
        print(
            f"{profile.device_id:<5}{profile.name:<16}{profile.bt_stack:<15}"
            f"{row['vuln']:<7}{row['description']:<13}{row['elapsed']:<15}"
            f"{finding.state if finding else '-':<22}"
            f"  [{report.packets_sent} pkts, {wall:.1f}s wall]"
        )

    print(
        "\nPaper Table VI: D1 DoS 1m32s, D2 DoS 1m25s, D3 DoS 7m11s, "
        "D4 none, D5 crash 40s, D6 none, D7 none, D8 crash 2h40m."
    )


if __name__ == "__main__":
    main()
