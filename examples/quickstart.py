#!/usr/bin/env python3
"""Quickstart: fuzz one virtual device and read the report.

Runs L2Fuzz against the D2 profile (Google Pixel 3, the paper's
reference phone) with a small packet budget, then prints the campaign
report, the trace-derived metrics, and — because D2 carries the injected
BlueDroid null-deref — the recovered tombstone.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import FuzzConfig, run_campaign
from repro.testbed import D2


def main() -> None:
    # An armed campaign stops at the first finding, like the real tool.
    config = FuzzConfig(max_packets=50_000, seed=0x1202)
    report = run_campaign(D2, config)

    print(report.summary())
    print()

    finding = report.first_finding
    if finding is None:
        print("No vulnerability found within the budget.")
        return

    print(f"Vulnerability class : {finding.vulnerability_class.value}")
    print(f"Socket error        : {finding.error_message}")
    print(f"State under test    : {finding.state}")
    print(f"Trigger packet      : {finding.trigger}")
    print(f"Ping test failed    : {finding.ping_failed}")
    if finding.crash_dump:
        print("\nRecovered crash dump (cf. paper Fig. 12):")
        print(finding.crash_dump)


if __name__ == "__main__":
    main()
