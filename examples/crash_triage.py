#!/usr/bin/env python3
"""Crash triage: from a fuzzing campaign to a minimal reproducer.

Addresses the paper's §V limitation 2 ("the root cause cannot be
determined immediately"): run a campaign until the Pixel 3 DoS fires,
save the packet trace, replay it against a fresh device to confirm the
crash, then delta-debug the ~200-packet trace down to the handful of
packets that actually matter.

Run with::

    python examples/crash_triage.py
"""

from __future__ import annotations

from repro import FuzzConfig
from repro.core.triage import minimize_trigger, replay, sent_packets, triage_report
from repro.hci.transport import VirtualLink
from repro.testbed import D2
from repro.testbed.session import FuzzSession


def fresh_target():
    """A pristine armed Pixel 3 for each replay attempt."""
    device = D2.build(armed=True, zero_latency=True)
    link = VirtualLink(clock=device.clock)
    device.attach_to(link)
    return device, link


def main() -> None:
    print("Step 1 — fuzz until the campaign finds the DoS...")
    session = FuzzSession(D2, FuzzConfig(max_packets=50_000))
    report = session.run()
    finding = report.first_finding
    print(f"   found: {finding.vulnerability_class.value} in {finding.state}")
    packets = sent_packets(session.fuzzer.sniffer.trace)
    print(f"   campaign trace: {len(packets)} transmitted packets")

    print("\nStep 2 — replay the full trace against a fresh device...")
    outcome = replay(packets, fresh_target)
    print(
        f"   reproduced: {outcome.crashed} at packet #{outcome.trigger_index} "
        f"({outcome.error_message}, bug id {outcome.crash_id})"
    )

    print("\nStep 3 — delta-debug the trace to a minimal reproducer...")
    minimal = minimize_trigger(packets, fresh_target)
    final = replay(minimal, fresh_target)
    print(triage_report(minimal, final))
    print(
        f"\n{len(packets)} packets -> {len(minimal)}: the root cause is the "
        "state-transition packet(s) plus the single malformed trigger."
    )


if __name__ == "__main__":
    main()
