#!/usr/bin/env python3
"""The paper's §II.A motivating scenario: file transfer over the stack.

"Suppose we intend to use a Bluetooth file transfer service. ... they
share service ports and channels through the L2CAP layer. Based on these
ports and channels, they create RFCOMM and OBEX connections to use file
transfer applications."

This example runs that exact vertical on the virtual stack: SDP browse →
L2CAP channel → RFCOMM multiplexer → OBEX object push — and then shows
why L2CAP is the root of trust: killing L2CAP (the zero-day from §IV.E)
takes every upper layer down with it.

Run with::

    python examples/file_transfer_stack.py
"""

from __future__ import annotations

from repro.core.packet_queue import PacketQueue
from repro.errors import TransportError
from repro.hci.transport import VirtualLink
from repro.l2cap.constants import CommandCode, ConnectionResult, Psm
from repro.l2cap.packets import L2capPacket, configuration_request, connection_request
from repro.obex import ObexPacket, ObexServer, ResponseCode, connect_request, put_request
from repro.rfcomm import RfcommFrame, RfcommMux, sabm, uih
from repro.sdp.client import SdpClient
from repro.stack.device import DeviceMeta, VirtualDevice
from repro.stack.services import ServiceDirectory, ServiceRecord
from repro.stack.vendors import BLUEDROID
from repro.stack.vulnerabilities import BLUEDROID_CIDP_NULL_DEREF


def build_laptop():
    """A laptop offering OBEX object push on RFCOMM DLCI 3."""
    obex = ObexServer()
    mux = RfcommMux(server_channels=(1,), service_handlers={3: obex.handle_request})
    services = ServiceDirectory(
        [
            ServiceRecord(Psm.SDP, "SDP"),
            ServiceRecord(Psm.RFCOMM, "OBEX Object Push"),
        ]
    )
    device = VirtualDevice(
        meta=DeviceMeta("A0:51:0B:00:00:99", "office-laptop", "laptop"),
        personality=BLUEDROID,
        services=services,
        vulnerabilities=(BLUEDROID_CIDP_NULL_DEREF,),
    )
    device.engine.data_handlers[Psm.RFCOMM] = mux.handle_payload
    link = VirtualLink(clock=device.clock)
    device.attach_to(link)
    return device, obex, PacketQueue(link)


def rfcomm_call(queue, target_cid, our_cid, frame):
    packet = L2capPacket(
        code=0, identifier=0, header_cid=target_cid,
        tail=frame.encode(), fill_defaults=False,
    )
    for response in queue.exchange(packet):
        if response.header_cid == our_cid:
            return RfcommFrame.decode(response.tail)
    return None


def main() -> None:
    device, obex, queue = build_laptop()

    print("1. SDP: browse the target's services over the air")
    for service in SdpClient(queue).browse():
        print(f"   PSM 0x{service.psm:04X}  {service.name}")

    print("2. L2CAP: open a channel to the RFCOMM port")
    responses = queue.exchange(connection_request(psm=Psm.RFCOMM, scid=0x00A0))
    rsp = next(r for r in responses if r.code == CommandCode.CONNECTION_RSP)
    assert rsp.fields["result"] == ConnectionResult.SUCCESS
    target_cid = rsp.fields["dcid"]
    print(f"   channel up: 0x00A0 <-> 0x{target_cid:04X}")

    print("3. RFCOMM: bring up the multiplexer and a data DLCI")
    rfcomm_call(queue, target_cid, 0x00A0, sabm(0))
    rfcomm_call(queue, target_cid, 0x00A0, sabm(3))
    print("   DLCI 0 (control) and DLCI 3 (data) connected")

    print("4. OBEX: connect and push a file")
    reply = rfcomm_call(queue, target_cid, 0x00A0, uih(3, connect_request().encode()))
    assert ObexPacket.decode(reply.payload, has_connect_extras=True).code == ResponseCode.SUCCESS
    reply = rfcomm_call(
        queue, target_cid, 0x00A0,
        uih(3, put_request("quarterly-report.pdf", b"%PDF-1.4 ...").encode()),
    )
    assert ObexPacket.decode(reply.payload).code == ResponseCode.SUCCESS
    print(f"   file delivered: {list(obex.inbox)} ({len(obex.inbox['quarterly-report.pdf'])} bytes)")

    print("\n5. Root of trust: now kill the L2CAP layer underneath it all")
    attack = configuration_request(dcid=0xBEEF, identifier=99)
    attack.garbage = bytes.fromhex("D23A910E")
    try:
        queue.send(attack)
        print("   target survived (unexpected)")
    except TransportError as error:
        print(f"   {error.message}: Bluetooth is down — RFCOMM and OBEX died with it")
    print(f"   device alive: {device.is_alive}")


if __name__ == "__main__":
    main()
