#!/usr/bin/env python3
"""Directed replay of the paper's two narrative attacks.

Part 1 walks the BlueBorne (CVE-2017-1000251) flow of paper §II.C against
a BlueZ-flavoured target: connect to the SDP port without pairing, enter
the configuration state, and deliver malformed configuration traffic that
the target accepts without rejection.

Part 2 replays the §IV.E zero-day on the armed Pixel 3 profile: a
Configuration Request naming a dangling DCID with a garbage tail, which
dereferences a NULL channel control block in ``l2c_csm_execute``.

Run with::

    python examples/blueborne_replay.py
"""

from __future__ import annotations

from repro.core.packet_queue import PacketQueue
from repro.errors import ConnectionFailedError
from repro.hci.transport import VirtualLink
from repro.l2cap.constants import CommandCode, Psm
from repro.l2cap.packets import (
    configuration_request,
    configuration_response,
    connection_request,
    disconnection_request,
)
from repro.testbed import D2, D8


def _rig(profile, armed: bool):
    device = profile.build(armed=armed)
    link = VirtualLink(clock=device.clock)
    device.attach_to(link)
    return device, PacketQueue(link)


def blueborne_flow() -> None:
    print("=" * 64)
    print("Part 1 — BlueBorne attack flow (paper §II.C, Fig. 4)")
    print("=" * 64)
    device, queue = _rig(D8, armed=False)  # an Ubuntu laptop running BlueZ

    print("-> ConnectionRequest (PSM: SDP)  [no pairing required]")
    responses = queue.exchange(connection_request(psm=Psm.SDP, scid=0x0070))
    dcid = responses[0].fields["dcid"]
    print(f"<- ConnectionResponse - Success (target DCID=0x{dcid:04X})")
    print("   state transition without pairing: CLOSED -> WAIT_CONFIG")

    print("-> Configuration Request (normal)")
    responses = queue.exchange(configuration_request(dcid=dcid, identifier=2))
    for response in responses:
        print(f"<- {response.command_name}")

    print("-> Malformed Configuration Response - Pending (garbage tail)")
    malformed = configuration_response(scid=dcid, result=0x0004, identifier=3)
    malformed.garbage = b"\x41" * 12
    responses = queue.exchange(malformed)
    rejected = any(r.code == CommandCode.COMMAND_REJECT for r in responses)
    print(f"   rejected by target: {rejected}  (BlueBorne premise: accepted)")
    queue.exchange(disconnection_request(dcid=dcid, scid=0x0070, identifier=4))
    print()


def pixel3_zero_day() -> None:
    print("=" * 64)
    print("Part 2 — Pixel 3 zero-day (paper §IV.E, Fig. 12)")
    print("=" * 64)
    device, queue = _rig(D2, armed=True)

    # Make CID 0x0040 dangle: connect, disconnect, reconnect.
    first = queue.exchange(connection_request(psm=Psm.SDP, scid=0x0070))
    stale = first[0].fields["dcid"]
    queue.exchange(disconnection_request(dcid=stale, scid=0x0070, identifier=2))
    queue.exchange(connection_request(psm=Psm.SDP, scid=0x0071, identifier=3))
    print(f"Dangling DCID prepared: 0x{stale:04X}")

    attack = configuration_request(dcid=stale, identifier=4)
    attack.garbage = bytes.fromhex("D23A910E")
    print(f"-> {attack.describe()}")
    try:
        queue.send(attack)
        print("   target survived (unexpected)")
    except ConnectionFailedError:
        print("<- Connection Failed: Bluetooth service is down (DoS)")

    print(f"\nDevice alive: {device.is_alive}")
    print("Tombstone pulled from the device:")
    print(device.crash_dumps[0])


def main() -> None:
    blueborne_flow()
    pixel3_zero_day()


if __name__ == "__main__":
    main()
