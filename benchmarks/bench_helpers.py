"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper and prints
it, so ``pytest benchmarks/ --benchmark-only`` doubles as the
reproduction script. Campaigns are deterministic, so each benchmark runs
one round (``pedantic``) — the interesting output is the reproduced
artefact, not the wall-clock variance.
"""

from __future__ import annotations


def run_once(benchmark, func):
    """Run *func* exactly once under the benchmark fixture."""
    return benchmark.pedantic(func, rounds=1, iterations=1)


def scaled(quick: bool, full: int, smoke: int) -> int:
    """Pick the packet budget for the current mode (see ``--quick``)."""
    return smoke if quick else full


def print_table(title: str, rows: list[dict]) -> None:
    """Print a reproduced table in aligned columns."""
    print(f"\n=== {title} ===")
    if not rows:
        print("(no rows)")
        return
    headers = list(rows[0])
    widths = {
        h: max(len(str(h)), *(len(str(row.get(h, ""))) for row in rows))
        for h in headers
    }
    print("  ".join(str(h).ljust(widths[h]) for h in headers))
    for row in rows:
        print("  ".join(str(row.get(h, "")).ljust(widths[h]) for h in headers))
