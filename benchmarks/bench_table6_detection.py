"""Reproduce paper Table VI: vulnerability detection on the 8 devices.

Runs a full armed L2Fuzz campaign against every Table V profile and
prints the reproduced table. Expected shape (paper values in brackets):
D1/D2/D3 DoS within minutes [1m32s / 1m25s / 7m11s], D5 crash within a
minute [40s], D8 crash after hours [2h40m], D4/D6/D7 clean.
"""

from __future__ import annotations

from repro.core.config import FuzzConfig
from repro.testbed.profiles import ALL_PROFILES
from repro.testbed.session import run_campaign

from benchmarks.bench_helpers import print_table, run_once, scaled

#: Paper Table VI ground truth for the shape assertions.
PAPER_RESULTS = {
    "D1": ("Yes", "DoS", 92),
    "D2": ("Yes", "DoS", 85),
    "D3": ("Yes", "DoS", 431),
    "D4": ("No", "N/A", None),
    "D5": ("Yes", "Crash", 40),
    "D6": ("No", "N/A", None),
    "D7": ("No", "N/A", None),
    "D8": ("Yes", "Crash", 9600),
}

#: Transmission budgets: vulnerable devices stop at the finding; the
#: clean devices and the slow D8 bug need room.
BUDGETS = {"D8": 250_000}
DEFAULT_BUDGET = 40_000
QUICK_BUDGET = 2_500


def _run_all(quick: bool) -> list[dict]:
    rows = []
    for profile in ALL_PROFILES:
        budget = scaled(
            quick, BUDGETS.get(profile.device_id, DEFAULT_BUDGET), QUICK_BUDGET
        )
        report = run_campaign(profile, FuzzConfig(max_packets=budget))
        row = report.as_table6_row()
        row["device"] = profile.device_id
        paper = PAPER_RESULTS[profile.device_id]
        row["paper"] = f"{paper[1]} @ {paper[2]}s" if paper[2] else "N/A"
        finding = report.first_finding
        row["state"] = finding.state if finding else "-"
        rows.append(row)
    return rows


def bench_table6_detection(benchmark, quick):
    rows = run_once(benchmark, lambda: _run_all(quick))
    print_table("Table VI — vulnerability detection results", rows)
    if quick:
        return
    by_device = {row["device"]: row for row in rows}
    for device_id, (vuln, vclass, _elapsed) in PAPER_RESULTS.items():
        assert by_device[device_id]["vuln"] == vuln, device_id
        assert by_device[device_id]["description"] == vclass, device_id
    # Time ordering: D5 fastest of the findings, D8 slowest by far.
    times = {
        d: by_device[d]["elapsed_seconds"]
        for d in ("D1", "D2", "D3", "D5", "D8")
    }
    assert times["D5"] < times["D1"]
    assert times["D5"] < times["D2"]
    assert max(times["D1"], times["D2"]) < times["D3"]
    assert times["D8"] > 10 * times["D3"]
    # The D3 bug is found in the Wait-Create state (paper §IV.E).
    assert by_device["D3"]["state"] == "WAIT_CREATE"
