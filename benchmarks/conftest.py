"""Benchmark-harness options.

``--quick`` turns the benchmark suite into a CI smoke run: budgets
shrink to a fraction of the paper's and the paper-value assertions are
skipped (tiny budgets cannot reproduce the published numbers — the
smoke run only proves every benchmark still executes end to end).
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser) -> None:
    parser.addoption(
        "--quick",
        action="store_true",
        default=False,
        help="smoke mode: tiny budgets, paper-value assertions skipped",
    )


@pytest.fixture
def quick(request) -> bool:
    """Whether the run is in ``--quick`` smoke mode."""
    return request.config.getoption("--quick")
