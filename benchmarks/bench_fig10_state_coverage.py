"""Reproduce paper Fig. 10: L2CAP state coverage per fuzzer.

The paper's bar chart: L2Fuzz 13, Defensics 7, BFuzz 6, BSS 3 (of 19).
Coverage is inferred from the packet trace by the PRETT-style analyzer.
"""

from __future__ import annotations

from repro.analysis.comparison import figure10_bars, run_comparison

from benchmarks.bench_helpers import print_table, run_once, scaled

BUDGET = 25_000
QUICK_BUDGET = 2_500

#: Paper Fig. 10 bar heights.
PAPER_FIG10 = {"L2Fuzz": 13, "Defensics": 7, "BFuzz": 6, "BSS": 3}


def bench_fig10_state_coverage(benchmark, quick):
    budget = scaled(quick, BUDGET, QUICK_BUDGET)
    results = run_once(benchmark, lambda: run_comparison(max_packets=budget))
    bars = figure10_bars(results)
    rows = [
        {
            "fuzzer": name,
            "covered_states": bars[name],
            "paper": PAPER_FIG10[name],
            "bar": "#" * bars[name],
        }
        for name in bars
    ]
    print_table("Fig. 10 — state coverage (of 19 states)", rows)
    if quick:
        return
    assert bars == PAPER_FIG10
