"""Corpus feedback bench: packets-to-coverage with energy scheduling.

The coverage-guided :class:`~repro.corpus.scheduler.EnergyScheduler`
feeds the fuzzer's per-state visit counts back into mutation
scheduling: minimal budgets while the state map is incomplete, then
rarity-weighted budgets once it is. This benchmark measures the payoff
the PR promises — on the simulated testbed, a coverage-guided campaign
reaches the sequential baseline's wire-inferred state coverage with
**fewer mutated packets** — and then demonstrates the cross-campaign
loop: the campaigns feed a shared corpus whose canonical (cmin) form
still covers everything, and whose state-frequency prior seeds the next
campaign straight into exploit mode.
"""

from __future__ import annotations

from repro.analysis.state_coverage import (
    StateCoverageAnalyzer,
    packets_to_coverage,
)
from repro.core.config import FuzzConfig
from repro.corpus.scheduler import EnergyScheduler
from repro.corpus.store import CorpusStore
from repro.testbed.profiles import D2
from repro.testbed.session import FuzzSession

from benchmarks.bench_helpers import print_table, run_once, scaled

BUDGET = 4_000
QUICK_BUDGET = 1_500


def _run_campaign(budget: int, strategy, corpus_dir=None) -> FuzzSession:
    session = FuzzSession(
        D2,
        FuzzConfig(max_packets=budget),
        armed=False,
        strategy=strategy,
        corpus_dir=corpus_dir,
    )
    session.run()
    return session


def bench_corpus_feedback(benchmark, quick, tmp_path):
    budget = scaled(quick, BUDGET, QUICK_BUDGET)
    corpus_dir = str(tmp_path / "corpus")

    def _run():
        baseline = _run_campaign(budget, "sequential", corpus_dir)
        guided = _run_campaign(budget, "coverage_guided", corpus_dir)
        store = CorpusStore(corpus_dir)
        seeded = _run_campaign(
            budget, EnergyScheduler(prior_visits=store.state_frequencies())
        )
        return baseline, guided, seeded, store

    baseline, guided, seeded, store = run_once(benchmark, _run)
    target = StateCoverageAnalyzer().analyze(baseline.fuzzer.sniffer)

    rows = []
    for label, session in (
        ("feedback off (sequential)", baseline),
        ("feedback on (coverage_guided)", guided),
        ("feedback on + corpus prior", seeded),
    ):
        report_states = StateCoverageAnalyzer().analyze(session.fuzzer.sniffer)
        rows.append(
            {
                "campaign": label,
                "packets_to_baseline_coverage": packets_to_coverage(
                    session.fuzzer.sniffer, len(target)
                ),
                "total_packets": session.fuzzer.sniffer.transmitted_count(),
                "states_covered": len(report_states),
            }
        )
    print_table(
        f"Corpus feedback — packets to {len(target)}-state coverage (D2)", rows
    )

    canonical = store.minimize(write=False)
    canonical_coverage = set()
    for entry in canonical:
        canonical_coverage.update(entry.covered)
    print(
        f"shared corpus: {len(store)} entries, cmin -> {len(canonical)}"
        f" covering {len(canonical_coverage)} token(s)"
    )

    baseline_packets = rows[0]["packets_to_baseline_coverage"]
    guided_packets = rows[1]["packets_to_baseline_coverage"]
    # The headline claim holds in both modes: feedback scheduling
    # reaches the baseline's coverage with fewer mutated packets.
    assert baseline_packets is not None and guided_packets is not None
    assert guided_packets < baseline_packets
    # cmin never loses coverage.
    assert canonical_coverage == set(store.coverage())
    if quick:
        return
    # At full budget the gap is decisive (~2x in practice).
    assert guided_packets * 3 < baseline_packets * 2
