"""Storage-backend benchmark: ingest and query throughput, both backends.

Ingests one synthetic corpus (entries plus finding buckets, duplicates
included) into a fresh file-layout corpus and a fresh SQLite (WAL)
corpus, then times the two read paths every consumer hammers: the
aggregate ``stats()`` pass and filtered ``query_findings`` lookups.

Every run appends to ``benchmarks/BENCH_storage.json``. Two gates:

* **SQLite speedup** — in full mode (a ≥10k-entry corpus) the SQLite
  backend must answer stats and filtered queries at least
  :data:`SPEEDUP_FLOOR_FULL` times faster than the file layout; the
  ``--quick`` smoke corpus is far too small to show the real gap, so it
  only enforces :data:`SPEEDUP_FLOOR_QUICK`.
* **file-backend ingest** — ingest throughput on the *file* backend
  must not drop more than :data:`REGRESSION_TOLERANCE` below the median
  of the last three recorded same-mode runs (the backend rework must
  not tax the default path).
"""

from __future__ import annotations

import datetime
import json
import shutil
import time
from pathlib import Path

from repro.corpus.entry import entry_from_packets
from repro.corpus.file_backend import FileCorpusBackend
from repro.corpus.findings import FindingRecord
from repro.corpus.sqlite_backend import SqliteCorpusBackend
from repro.l2cap.packets import echo_request

from benchmarks.bench_helpers import print_table, run_once, scaled

ENTRIES = 12_000
QUICK_ENTRIES = 400
BUCKETS = 200
QUICK_BUCKETS = 30
QUERY_REPS = 20
QUICK_QUERY_REPS = 5

#: Full-corpus gate: SQLite must win stat/query by at least this factor.
SPEEDUP_FLOOR_FULL = 5.0
#: Smoke-corpus gate: the tiny corpus only has to keep SQLite ahead.
SPEEDUP_FLOOR_QUICK = 1.2

#: Fail when file-backend ingest drops more than this below the median
#: of the last three same-mode runs.
REGRESSION_TOLERANCE = 0.35

RESULTS_PATH = Path(__file__).resolve().parent / "BENCH_storage.json"

STATES = ("CLOSED", "WAIT_CONNECT", "WAIT_CONFIG", "OPEN", "WAIT_DISCONNECT")
VENDORS = ("Google", "Apple", "Samsung", "Murata")


def _load_results() -> dict:
    if RESULTS_PATH.exists():
        return json.loads(RESULTS_PATH.read_text(encoding="utf-8"))
    return {"baseline": {}, "runs": []}


def _reference_eps(runs: list[dict], mode: str) -> float | None:
    """Median file-backend ingest rate of the last 3 *mode* runs."""
    history = [run["file"]["ingest_eps"] for run in runs if run["mode"] == mode]
    if not history:
        return None
    tail = sorted(history[-3:])
    return tail[len(tail) // 2]


def _synthetic_entries(count: int) -> list:
    entries = []
    for i in range(count):
        packet = echo_request(
            i.to_bytes(4, "big"), identifier=(i % 200) + 1
        )
        state = STATES[i % len(STATES)]
        tokens = [state]
        if i % 3 == 0:
            tokens.append(f"{state}>{STATES[(i + 1) % len(STATES)]}")
        entries.append(
            entry_from_packets(
                packets=[packet],
                unlocked=tokens,
                covered=tokens,
                device_id=f"D{i % 7}",
                strategy="sequential",
                seed=i,
                armed=False,
            )
        )
    return entries


def _synthetic_records(count: int) -> list[FindingRecord]:
    packet_hex = echo_request(b"bench", identifier=1).encode().hex()
    return [
        FindingRecord(
            vendor=VENDORS[i % len(VENDORS)],
            vulnerability_class="DoS" if i % 2 else "Crash",
            trigger=f"ECHO_REQ(bench-{i})",
            trigger_hash=f"{i:064x}",
            device_id=f"D{i % 7}",
            state=STATES[i % len(STATES)],
            error_message="Connection Failed",
            packets=(packet_hex,),
            crash_id=None,
            sim_time=float(i),
        )
        for i in range(count)
    ]


def _measure_backend(backend, entries, records, query_reps: int) -> dict:
    start = time.perf_counter()
    for entry in entries:
        backend.add_entry(entry)
    for record in records:
        backend.record_finding(record)
    for record in records:  # duplicate pass: the occurrence-bump path
        backend.record_finding(record)
    ingest = time.perf_counter() - start

    start = time.perf_counter()
    for _ in range(query_reps):
        stats = backend.stats()
    stat_seconds = time.perf_counter() - start

    start = time.perf_counter()
    for _ in range(query_reps):
        for vendor in VENDORS:
            backend.query_findings(vendor=vendor, vulnerability_class="DoS")
    query_seconds = time.perf_counter() - start

    assert stats.entry_count == len(entries)
    assert stats.finding_count == len(records)
    assert stats.occurrence_total == 2 * len(records)
    operations = len(entries) + 2 * len(records)
    return {
        "ingest_seconds": round(ingest, 4),
        "ingest_eps": round(operations / ingest, 1),
        "stat_seconds": round(stat_seconds, 4),
        "query_seconds": round(query_seconds, 4),
    }


def _run_comparison(entry_count: int, bucket_count: int, query_reps: int):
    entries = _synthetic_entries(entry_count)
    records = _synthetic_records(bucket_count)
    results = {}
    scratch = Path("benchmarks") / ".bench_storage_scratch"
    shutil.rmtree(scratch, ignore_errors=True)
    try:
        for name, factory in (
            ("file", FileCorpusBackend),
            ("sqlite", SqliteCorpusBackend),
        ):
            backend = factory(scratch / name)
            results[name] = _measure_backend(
                backend, entries, records, query_reps
            )
            backend.close()
    finally:
        shutil.rmtree(scratch, ignore_errors=True)
    return results


def bench_storage(benchmark, quick):
    entry_count = scaled(quick, ENTRIES, QUICK_ENTRIES)
    bucket_count = scaled(quick, BUCKETS, QUICK_BUCKETS)
    query_reps = scaled(quick, QUERY_REPS, QUICK_QUERY_REPS)
    results = run_once(
        benchmark,
        lambda: _run_comparison(entry_count, bucket_count, query_reps),
    )
    stat_speedup = results["file"]["stat_seconds"] / results["sqlite"][
        "stat_seconds"
    ]
    query_speedup = results["file"]["query_seconds"] / results["sqlite"][
        "query_seconds"
    ]
    mode = "quick" if quick else "full"
    entry = {
        "mode": mode,
        "entries": entry_count,
        "buckets": bucket_count,
        "file": results["file"],
        "sqlite": results["sqlite"],
        "stat_speedup": round(stat_speedup, 1),
        "query_speedup": round(query_speedup, 1),
        "recorded": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
    }

    data = _load_results()
    # The reference is computed over the runs recorded *before* this
    # one: a run must not vote on its own gate.
    reference = _reference_eps(data.get("runs", []), mode)
    data.setdefault("runs", []).append(entry)
    data["runs"] = data["runs"][-50:]
    baseline = data.setdefault("baseline", {}).get(mode)
    if baseline is None:
        data["baseline"][mode] = entry
    RESULTS_PATH.write_text(json.dumps(data, indent=2) + "\n", encoding="utf-8")

    rows = [
        {"backend": name, **results[name]}
        for name in ("file", "sqlite")
    ]
    rows.append(
        {
            "backend": "sqlite speedup",
            "stat_seconds": f"{stat_speedup:.1f}x",
            "query_seconds": f"{query_speedup:.1f}x",
        }
    )
    print_table(f"storage backends — {entry_count} entries ({mode})", rows)

    floor = SPEEDUP_FLOOR_QUICK if quick else SPEEDUP_FLOOR_FULL
    assert stat_speedup >= floor, (
        f"SQLite stats() only {stat_speedup:.1f}x faster than the file"
        f" backend on {entry_count} entries (floor {floor}x)"
    )
    assert query_speedup >= floor, (
        f"SQLite query_findings() only {query_speedup:.1f}x faster than"
        f" the file backend on {entry_count} entries (floor {floor}x)"
    )
    if reference is not None:
        ingest_floor = reference * (1.0 - REGRESSION_TOLERANCE)
        assert results["file"]["ingest_eps"] >= ingest_floor, (
            f"file-backend ingest regression:"
            f" {results['file']['ingest_eps']:.0f} ops/s is more than"
            f" {REGRESSION_TOLERANCE:.0%} below the median of the last 3"
            f" {mode} runs ({reference:.0f} ops/s, floor"
            f" {ingest_floor:.0f}); if this slowdown is intended, prune"
            " the runs list in benchmarks/BENCH_storage.json"
        )
