"""Ablation bench: remove each of L2Fuzz's two key techniques in turn.

DESIGN.md §5 calls out the design choices to ablate:

* **state guiding off** — fuzz only from CLOSED: state coverage collapses
  and the configuration-job bug (D2) becomes unreachable;
* **core-field discipline off** — additionally corrupt the dependent
  length fields (BFuzz-style): the rejection ratio spikes and mutation
  efficiency collapses;
* **garbage tail off** — the D2 null-deref needs the tail; the campaign
  walks straight past the bug.
"""

from __future__ import annotations

from repro.core.config import FuzzConfig
from repro.testbed.profiles import D2
from repro.testbed.session import run_campaign

from benchmarks.bench_helpers import print_table, run_once, scaled

BUDGET = 20_000
QUICK_BUDGET = 2_000


def _run_variant(name: str, budget: int, armed: bool, **config_kwargs) -> dict:
    config = FuzzConfig(max_packets=budget, **config_kwargs)
    report = run_campaign(D2, config, armed=armed, zero_latency=True)
    eff = report.efficiency
    return {
        "variant": name,
        "mp_pct": round(100 * eff.mp_ratio, 2),
        "pr_pct": round(100 * eff.pr_ratio, 2),
        "eff_pct": round(100 * eff.mutation_efficiency, 2),
        "coverage": len(report.covered_states),
        "vuln_found": report.vulnerability_found,
    }


def _run_all(budget: int) -> list[dict]:
    return [
        _run_variant("full L2Fuzz (ratios)", budget, armed=False),
        _run_variant("full L2Fuzz (armed)", budget, armed=True),
        _run_variant("no state guiding", budget, armed=True, state_guiding=False),
        _run_variant(
            "no core-field discipline",
            budget,
            armed=False,
            mutate_core_fields_only=False,
        ),
        _run_variant("no garbage tail", budget, armed=True, append_garbage=False),
    ]


def bench_ablation(benchmark, quick):
    budget = scaled(quick, BUDGET, QUICK_BUDGET)
    rows = run_once(benchmark, lambda: _run_all(budget))
    print_table("Ablation — each key technique removed in turn", rows)
    if quick:
        return
    by_name = {row["variant"]: row for row in rows}

    full_ratios = by_name["full L2Fuzz (ratios)"]
    full_armed = by_name["full L2Fuzz (armed)"]
    no_guiding = by_name["no state guiding"]
    no_discipline = by_name["no core-field discipline"]
    no_garbage = by_name["no garbage tail"]

    # The full fuzzer finds the D2 bug; coverage 13 when measuring ratios.
    assert full_armed["vuln_found"]
    assert full_ratios["coverage"] == 13

    # Without state guiding the config-job bug is unreachable and
    # coverage collapses to the closed posture (plus the handful of
    # states the port scan itself exposes).
    assert not no_guiding["vuln_found"]
    assert no_guiding["coverage"] <= 4
    assert no_guiding["coverage"] < full_ratios["coverage"] - 8

    # Without core-field discipline rejections spike and efficiency drops.
    assert no_discipline["pr_pct"] > full_ratios["pr_pct"] + 10
    assert no_discipline["eff_pct"] < full_ratios["eff_pct"]

    # Without the garbage tail the D2 null-deref is never triggered.
    assert not no_garbage["vuln_found"]
