"""Telemetry overhead gate: journal + metrics must stay off the hot path.

The observability layer's contract is that a fleet pays for it only at
campaign/shard boundaries — per-packet execution carries no journal
writes, no metric locks, no allocations. This benchmark measures that
contract directly: the same worker shard runs with telemetry off and on,
*interleaved* in one process (``off, on, off, on, ...``) so machine
noise hits both arms equally, and the medians are compared.
``bench_hotpath``'s history shows >20% wall-pps noise between identical
back-to-back runs, so interleaving — not a bigger sample — is what makes
a 3% gate measurable at all.

Every run appends to ``benchmarks/BENCH_telemetry.json`` (same shape as
the other BENCH files: first run kept as baseline, last 50 runs of
history). The full mode enforces the ISSUE's <3% budget; ``--quick`` is
the CI smoke gate with a loose tolerance, since sub-second budgets put
single-digit milliseconds of fixed telemetry cost (file create, shard
span events) against too little fuzzing work to amortise it.
"""

from __future__ import annotations

import datetime
import json
import statistics
import tempfile
import time
from pathlib import Path

from repro.core.config import FuzzConfig
from repro.core.runtime import FleetContext, run_shard
from repro.telemetry import EVENTS_FILENAME, SEGMENTS_DIRNAME, new_run_id

from benchmarks.bench_helpers import print_table, run_once, scaled

BUDGET = 60_000
QUICK_BUDGET = 5_000

#: Interleaved (off, on) pairs per measurement.
PAIRS = 3

#: The ISSUE's budget: full-mode throughput with telemetry may not drop
#: more than this fraction below the telemetry-off arm.
OVERHEAD_TOLERANCE = 0.03

#: Smoke-mode tolerance: tiny budgets cannot amortise the fixed
#: per-shard telemetry cost, so the quick gate only catches blowups.
QUICK_TOLERANCE = 0.20

RESULTS_PATH = Path(__file__).resolve().parent / "BENCH_telemetry.json"


def _context(budget: int, telemetry_dir: str | None, run_id: str | None):
    return FleetContext(
        base_config=FuzzConfig(seed=7, max_packets=budget),
        armed=False,
        target_state_value="OPEN",
        corpus_dir=None,
        retain_trace=False,
        prior_visits=(),
        dictionary=(),
        telemetry_dir=telemetry_dir,
        run_id=run_id,
    )


def _shard(budget: int) -> tuple:
    # One D1 campaign per shard: the same workload bench_hotpath times,
    # expressed as the fleet worker actually runs it.
    return (((0, "D1", "sequential", 7, "l2cap"),),)[0]


def _time_shard(context, shard) -> float:
    start = time.perf_counter()
    run_shard(context, shard)
    return time.perf_counter() - start


def _measure(budget: int, telemetry_root: str) -> tuple[float, float]:
    """Median wall seconds for (off, on), interleaved off/on pairs."""
    shard = _shard(budget)
    off_walls, on_walls = [], []
    for pair in range(PAIRS):
        off_walls.append(_time_shard(_context(budget, None, None), shard))
        run_id = f"{new_run_id()}-p{pair}"
        on_walls.append(
            _time_shard(_context(budget, telemetry_root, run_id), shard)
        )
        run_dir = Path(telemetry_root) / run_id
        segments = list((run_dir / SEGMENTS_DIRNAME).glob("*.jsonl"))
        assert segments, "telemetry arm produced no journal segment"
    return statistics.median(off_walls), statistics.median(on_walls)


def _load_results() -> dict:
    if RESULTS_PATH.exists():
        return json.loads(RESULTS_PATH.read_text(encoding="utf-8"))
    return {"baseline": {}, "runs": []}


def bench_telemetry_overhead(benchmark, quick):
    budget = scaled(quick, BUDGET, QUICK_BUDGET)
    with tempfile.TemporaryDirectory(prefix="bench-telemetry-") as root:
        off_wall, on_wall = run_once(benchmark, lambda: _measure(budget, root))
    off_pps = budget / off_wall
    on_pps = budget / on_wall
    overhead = (on_wall - off_wall) / off_wall
    mode = "quick" if quick else "full"
    entry = {
        "mode": mode,
        "budget": budget,
        "pairs": PAIRS,
        "off_wall_seconds": round(off_wall, 4),
        "on_wall_seconds": round(on_wall, 4),
        "off_wall_pps": round(off_pps, 1),
        "on_wall_pps": round(on_pps, 1),
        "overhead_pct": round(100.0 * overhead, 2),
        "recorded": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
    }

    data = _load_results()
    data.setdefault("runs", []).append(entry)
    data["runs"] = data["runs"][-50:]
    baseline = data.setdefault("baseline", {}).get(mode)
    if baseline is None:
        data["baseline"][mode] = entry
    RESULTS_PATH.write_text(json.dumps(data, indent=2) + "\n", encoding="utf-8")

    rows = [entry]
    if baseline is not None:
        rows.append({**baseline, "mode": f"{mode} (first recorded)"})
    print_table("telemetry — journal+metrics overhead (interleaved A/B)", rows)

    tolerance = QUICK_TOLERANCE if quick else OVERHEAD_TOLERANCE
    assert overhead <= tolerance, (
        f"telemetry overhead {overhead:.1%} exceeds the {tolerance:.0%} "
        f"budget (off {off_wall:.3f}s vs on {on_wall:.3f}s median over "
        f"{PAIRS} interleaved pairs); the journal/metrics layer must stay "
        "off the packet hot path"
    )
