"""Reproduce paper Fig. 11: per-fuzzer coverage maps of the state machine.

Prints, for every fuzzer, the 19-state machine with covered states
highlighted — the textual equivalent of the paper's four sub-figures —
and asserts the structural claims: only L2Fuzz reaches the creation and
move jobs, and nobody reaches the six initiator-only states.
"""

from __future__ import annotations

from repro.analysis.comparison import figure11_maps, run_comparison
from repro.l2cap.jobs import STATE_JOB
from repro.l2cap.states import ALL_STATES, INITIATOR_ONLY_STATES

from benchmarks.bench_helpers import run_once, scaled

BUDGET = 25_000
QUICK_BUDGET = 2_500


def _print_map(name: str, covered: list[str]) -> None:
    print(f"\n--- Fig. 11 ({name}): {len(covered)}/19 states ---")
    for state in ALL_STATES:
        mark = "█" if state.value in covered else "·"
        print(f"  [{mark}] {state.value:<22} ({STATE_JOB[state].value})")


def bench_fig11_coverage_map(benchmark, quick):
    budget = scaled(quick, BUDGET, QUICK_BUDGET)
    results = run_once(benchmark, lambda: run_comparison(max_packets=budget))
    maps = figure11_maps(results)
    for name, covered in maps.items():
        _print_map(name, covered)

    if quick:
        return
    # Structural claims of §IV.D.
    for state in ("WAIT_CREATE", "WAIT_MOVE", "WAIT_MOVE_CONFIRM"):
        assert state in maps["L2Fuzz"]
        for other in ("Defensics", "BFuzz", "BSS"):
            assert state not in maps[other]
    # Every fuzzer's coverage is a subset of L2Fuzz's.
    for other in ("Defensics", "BFuzz", "BSS"):
        assert set(maps[other]) <= set(maps["L2Fuzz"])
    # Nobody can reach the initiator-only states from the master side.
    initiator = {state.value for state in INITIATOR_ONLY_STATES}
    for covered in maps.values():
        assert not initiator & set(covered)
