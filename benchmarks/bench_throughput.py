"""Reproduce the §IV.C throughput comparison (packets per second).

The paper measures L2Fuzz at 524.27 pps, BFuzz at 454.54 pps, Defensics
at 3.37 pps and BSS at 1.95 pps. In the simulation the link charges each
fuzzer's empirical per-packet cost, so this benchmark verifies the
throughput model end-to-end from the trace (packets / simulated time).
"""

from __future__ import annotations

import pytest

from repro.analysis.comparison import run_comparison

from benchmarks.bench_helpers import print_table, run_once, scaled

BUDGET = 10_000
QUICK_BUDGET = 1_500

PAPER_PPS = {"L2Fuzz": 524.27, "Defensics": 3.37, "BFuzz": 454.54, "BSS": 1.95}


def bench_throughput(benchmark, quick):
    budget = scaled(quick, BUDGET, QUICK_BUDGET)
    results = run_once(benchmark, lambda: run_comparison(max_packets=budget))
    rows = []
    for name, result in results.items():
        rows.append(
            {
                "fuzzer": name,
                "pps_measured": round(result.efficiency.packets_per_second, 2),
                "pps_paper": PAPER_PPS[name],
            }
        )
    print_table("§IV.C — transmission throughput", rows)
    for name, result in results.items():
        assert result.efficiency.packets_per_second == pytest.approx(
            PAPER_PPS[name], rel=1e-6
        )
