"""Reproduce paper Fig. 9: cumulative rejection packets vs received.

BFuzz's curve hugs the diagonal (~92% of everything it receives is a
rejection), L2Fuzz sits at ~1/3, Defensics near the floor, and BSS
receives no rejections at all (absent from the figure).
"""

from __future__ import annotations

from repro.analysis.comparison import run_comparison
from repro.analysis.metrics import render_ascii_curve

from benchmarks.bench_helpers import print_table, run_once, scaled

BUDGET = 30_000
QUICK_BUDGET = 2_000


def bench_fig9_pr_curve(benchmark, quick):
    budget = scaled(quick, BUDGET, QUICK_BUDGET)
    results = run_once(
        benchmark,
        lambda: run_comparison(max_packets=budget, sample_every=budget // 15),
    )

    rows = []
    for name, result in results.items():
        final = result.pr_points[-1]
        rows.append(
            {
                "fuzzer": name,
                "received": final.x,
                "rejections": final.y,
                "pr_ratio_pct": round(100 * final.y / max(final.x, 1), 2),
            }
        )
    print_table("Fig. 9 — cumulative rejection packets (final points)", rows)
    print(render_ascii_curve(list(results["BFuzz"].pr_points), label="BFuzz PR curve"))

    if quick:
        return
    for result in results.values():
        ys = [p.y for p in result.pr_points]
        assert ys == sorted(ys)

    ratios = {
        name: r.pr_points[-1].y / max(r.pr_points[-1].x, 1)
        for name, r in results.items()
    }
    assert ratios["BFuzz"] > 0.80  # paper: 91.60%
    assert 0.25 < ratios["L2Fuzz"] < 0.40  # paper: 32.49%
    assert ratios["Defensics"] < 0.05  # paper: 1.73%
    assert results["BSS"].pr_points[-1].y == 0  # paper: no rejections
