"""Wall-clock hot-path benchmark: campaign throughput and peak memory.

Unlike the paper-reproduction benchmarks (which read the *simulated*
clock), this one measures what the ROADMAP's "as fast as the hardware
allows" goal needs: wall-clock packets per second and peak RSS for a
large streaming campaign (``retain_trace=False``).

Every run appends to ``benchmarks/BENCH_hotpath.json`` so the perf
trajectory accumulates across PRs. The regression gate compares
against the **median of the last three recorded runs** of the same
mode (the runs list shows >20% wall-pps noise between identical-code
runs, so a single-run reference flags phantom regressions and a lucky
single run would ratchet the floor too high); a run fails when
wall-clock throughput drops more than :data:`REGRESSION_TOLERANCE`
below that median — the CI smoke job runs the ``--quick`` mode as the
gate. The first recorded run per mode is kept as the historical
baseline for before/after context in the printed table.

The simulated metrics must stay exact regardless of machine speed: the
campaign still reads 524.27 pps off the simulated clock (paper §IV.C).
"""

from __future__ import annotations

import datetime
import json
import resource
import sys
import time
from pathlib import Path

import pytest

from repro.core.config import FuzzConfig
from repro.testbed.profiles import D1
from repro.testbed.session import FuzzSession

from benchmarks.bench_helpers import print_table, run_once, scaled

BUDGET = 100_000
QUICK_BUDGET = 8_000

#: Fail when wall-clock pps drops more than this fraction below baseline.
REGRESSION_TOLERANCE = 0.30

RESULTS_PATH = Path(__file__).resolve().parent / "BENCH_hotpath.json"

#: The paper's L2Fuzz transmission throughput — the simulated-clock
#: number that must not move however fast the wall clock gets.
PAPER_SIM_PPS = 524.27


def _load_results() -> dict:
    if RESULTS_PATH.exists():
        return json.loads(RESULTS_PATH.read_text(encoding="utf-8"))
    return {"baseline": {}, "runs": []}


def _reference_pps(runs: list[dict], mode: str) -> float | None:
    """Regression reference: median wall pps of the last 3 *mode* runs.

    Robust against both directions of single-run noise — one slow CI
    run neither fails the next PR nor drags the floor down, and one
    lucky run cannot ratchet it up. Fewer than one prior run means no
    gate yet (the first run of a mode seeds the history).
    """
    history = [run["wall_pps"] for run in runs if run["mode"] == mode]
    if not history:
        return None
    tail = sorted(history[-3:])
    return tail[len(tail) // 2]


def _rss_kb() -> int:
    """Resident set size right now, in kB.

    Read from ``/proc/self/statm`` so the figure reflects the campaign
    just run, not the process-lifetime high-water mark (``ru_maxrss``
    would report whichever earlier test in the pytest process was
    hungriest). Falls back to ``ru_maxrss`` off Linux.
    """
    try:
        with open("/proc/self/statm", encoding="ascii") as handle:
            pages = int(handle.read().split()[1])
        return pages * (resource.getpagesize() // 1024)
    except (OSError, ValueError, IndexError):
        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        if sys.platform == "darwin":
            peak //= 1024  # macOS reports ru_maxrss in bytes, not kB
        return peak


def _run_campaign(budget: int):
    session = FuzzSession(
        profile=D1,
        config=FuzzConfig(seed=7, max_packets=budget),
        armed=False,
        zero_latency=True,
        retain_trace=False,
    )
    start = time.perf_counter()
    report = session.run()
    wall = time.perf_counter() - start
    return report, wall


def bench_hotpath(benchmark, quick):
    budget = scaled(quick, BUDGET, QUICK_BUDGET)
    report, wall = run_once(benchmark, lambda: _run_campaign(budget))
    wall_pps = report.packets_sent / wall
    mode = "quick" if quick else "full"
    entry = {
        "mode": mode,
        "budget": budget,
        "packets": report.packets_sent,
        "wall_seconds": round(wall, 4),
        "wall_pps": round(wall_pps, 1),
        "campaign_rss_kb": _rss_kb(),
        "process_peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        "sim_pps": round(report.efficiency.packets_per_second, 2),
        "recorded": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
    }

    data = _load_results()
    # The reference is computed over the runs recorded *before* this
    # one: a run must not vote on its own gate.
    reference = _reference_pps(data.get("runs", []), mode)
    data.setdefault("runs", []).append(entry)
    data["runs"] = data["runs"][-50:]
    baseline = data.setdefault("baseline", {}).get(mode)
    if baseline is None:
        data["baseline"][mode] = entry
    RESULTS_PATH.write_text(json.dumps(data, indent=2) + "\n", encoding="utf-8")

    rows = [entry]
    if reference is not None:
        rows.append({"mode": f"{mode} (median of last 3)", "wall_pps": reference})
    if baseline is not None:
        rows.append({**baseline, "mode": f"{mode} (first recorded)"})
    print_table("hot path — wall-clock throughput and memory", rows)

    # Simulated metrics are machine-independent and must stay exact.
    assert report.efficiency.packets_per_second == pytest.approx(
        PAPER_SIM_PPS, rel=1e-6
    )
    if reference is not None:
        floor = reference * (1.0 - REGRESSION_TOLERANCE)
        assert wall_pps >= floor, (
            f"hot-path regression: {wall_pps:.0f} wall pps is more than "
            f"{REGRESSION_TOLERANCE:.0%} below the median of the last 3 "
            f"{mode} runs ({reference:.0f} pps, floor {floor:.0f}); if "
            "this slowdown is intended, prune the runs list in "
            "benchmarks/BENCH_hotpath.json"
        )
