"""Reproduce paper Table VII: mutation efficiency of the four fuzzers.

Runs L2Fuzz, Defensics, BFuzz and BSS against the disarmed D2 reference
phone (the paper's controlled §IV.C setup) and prints the reproduced
table next to the paper's numbers.
"""

from __future__ import annotations

from repro.analysis.comparison import run_comparison, table7_rows

from benchmarks.bench_helpers import print_table, run_once, scaled

#: Paper Table VII (percentages).
PAPER_TABLE7 = {
    "L2Fuzz": (69.96, 32.49, 47.22),
    "Defensics": (2.38, 1.73, 2.33),
    "BFuzz": (1.50, 91.60, 0.12),
    "BSS": (0.0, 0.0, 0.0),
}

BUDGET = 60_000
QUICK_BUDGET = 3_000


def bench_table7_efficiency(benchmark, quick):
    budget = scaled(quick, BUDGET, QUICK_BUDGET)
    results = run_once(benchmark, lambda: run_comparison(max_packets=budget))
    rows = table7_rows(results)
    for row in rows:
        paper = PAPER_TABLE7[row["fuzzer"]]
        row["paper_mp"] = paper[0]
        row["paper_pr"] = paper[1]
        row["paper_eff"] = paper[2]
    print_table("Table VII — mutation efficiency (measured vs paper)", rows)

    if quick:
        return
    eff = {name: r.efficiency for name, r in results.items()}
    # Bands around the paper's values (shape, not absolutes).
    assert 0.60 < eff["L2Fuzz"].mp_ratio < 0.80
    assert 0.25 < eff["L2Fuzz"].pr_ratio < 0.40
    assert 0.40 < eff["L2Fuzz"].mutation_efficiency < 0.55
    assert eff["Defensics"].mp_ratio < 0.05
    assert eff["Defensics"].pr_ratio < 0.05
    assert eff["BFuzz"].pr_ratio > 0.80
    assert eff["BFuzz"].mutation_efficiency < 0.005
    assert eff["BSS"].mutation_efficiency == 0.0
    # The headline ordering.
    ordering = sorted(eff, key=lambda n: eff[n].mutation_efficiency, reverse=True)
    assert ordering == ["L2Fuzz", "Defensics", "BFuzz", "BSS"]
