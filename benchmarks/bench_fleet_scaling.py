"""Fleet scaling: campaigns per second vs. worker-pool size.

A fleet campaign occupies one worker (one fuzzing dongle, in the
paper's physical setup) for its simulated duration, so fleet throughput
is governed by the makespan of the campaign schedule over the pool.
This benchmark runs the same 4-profile × 2-strategy fleet on 1 and on 4
workers and reports campaigns/sec in simulated time — the wall-clock
dispatch time is also printed, but the asserted scaling is the
simulated schedule, which is deterministic and host-independent.
"""

from __future__ import annotations

import time

from repro.core.config import FuzzConfig
from repro.core.fleet import FleetOrchestrator
from repro.testbed.profiles import ALL_PROFILES

from benchmarks.bench_helpers import print_table, run_once, scaled

BUDGET = 3_000
QUICK_BUDGET = 800
FLEET_SEED = 7
STRATEGIES = ("breadth_first", "targeted")
WORKER_COUNTS = (1, 2, 4)


def _run_fleet(workers: int, budget: int = BUDGET):
    orchestrator = FleetOrchestrator(
        profiles=ALL_PROFILES[:4],
        strategies=STRATEGIES,
        fleet_seed=FLEET_SEED,
        workers=workers,
        base_config=FuzzConfig(max_packets=budget),
    )
    started = time.perf_counter()
    report = orchestrator.run()
    return report, time.perf_counter() - started


def bench_fleet_scaling(benchmark, quick):
    budget = scaled(quick, BUDGET, QUICK_BUDGET)

    def measure_all():
        return {workers: _run_fleet(workers, budget) for workers in WORKER_COUNTS}

    results = run_once(benchmark, measure_all)
    rows = []
    for workers, (report, wall) in results.items():
        rows.append(
            {
                "workers": workers,
                "campaigns": len(report.campaigns),
                "makespan_sim_s": round(report.simulated_makespan_seconds, 2),
                "campaigns_per_sim_s": round(
                    report.campaigns_per_simulated_second, 6
                ),
                "dispatch_wall_s": round(wall, 2),
            }
        )
    print_table("Fleet scaling — campaigns/sec vs workers", rows)

    single = results[1][0]
    quad = results[4][0]
    # Worker count must not change what the fleet finds or covers —
    # only the schedule-dependent summary fields may differ.
    schedule_keys = (
        "workers",
        "simulated_makespan_seconds",
        "campaigns_per_simulated_second",
    )
    single_dict = single.to_dict()
    quad_dict = quad.to_dict()
    for key in schedule_keys:
        single_dict.pop(key)
        quad_dict.pop(key)
    assert single_dict == quad_dict

    speedup = (
        quad.campaigns_per_simulated_second
        / single.campaigns_per_simulated_second
    )
    print(f"\n1 -> 4 workers: {speedup:.2f}x campaigns/sec")
    assert speedup > 1.5
