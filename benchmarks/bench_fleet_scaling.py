"""Fleet scaling: campaigns per second vs. worker-pool size.

A fleet campaign occupies one worker (one fuzzing dongle, in the
paper's physical setup) for its simulated duration, so fleet throughput
is governed by the makespan of the campaign schedule over the pool.
This benchmark runs the same 4-profile × 2-strategy fleet on 1, 2 and 4
workers on the persistent batched runtime and asserts near-linear
scaling of the simulated schedule — ≥0.8× linear at 4 workers.

The fleet runs **disarmed**: a scaling benchmark needs a saturating
workload. Armed, the Table-V bugs stop most campaigns within seconds
while one immune device fuzzes its whole budget — the 1→4-worker
speedup is then capped at ``sum/max ≈ 2.5×`` by that single straggler
no matter how good the scheduler is, which measures workload luck, not
the runtime. Disarmed, every campaign runs its full budget (the paper's
own ratio-measurement posture) and the schedule itself is what scales.

Wall-clock dispatch time is also recorded — cold (pool start-up +
context shipping) and warm (the persistent runtime reused) — and every
run is appended to ``benchmarks/BENCH_fleet_scaling.json`` so the
scaling trajectory accumulates across PRs. Worker count must never
change *what* the fleet computes: the merged reports are asserted
identical across all pool sizes, batch granularities included.

The supervised dispatch loop (deadlines, retry bookkeeping, futures
instead of ``pool.map``) is also priced here: the same warm fleet is
dispatched supervised and unsupervised, median of three each, and the
overhead is gated at <3% (plus a 50 ms absolute allowance for
sub-second dispatches).
"""

from __future__ import annotations

import datetime
import json
import statistics
import time
from pathlib import Path

from repro.core.config import FuzzConfig
from repro.core.fleet import FleetOrchestrator
from repro.core.runtime import iter_shard_specs
from repro.testbed.profiles import ALL_PROFILES

from benchmarks.bench_helpers import print_table, run_once, scaled

BUDGET = 3_000
QUICK_BUDGET = 800
FLEET_SEED = 7
STRATEGIES = ("breadth_first", "targeted")
WORKER_COUNTS = (1, 2, 4)

#: Required fraction of perfectly linear scaling at 4 workers.
LINEAR_FLOOR = 0.8

#: Supervision must cost <3% of dispatch wall time (plus a 50 ms
#: absolute allowance so sub-second dispatches don't gate on noise).
SUPERVISION_OVERHEAD_FRACTION = 0.03
SUPERVISION_OVERHEAD_ABS_S = 0.05

RESULTS_PATH = Path(__file__).resolve().parent / "BENCH_fleet_scaling.json"


def _run_fleet(workers: int, budget: int):
    orchestrator = FleetOrchestrator(
        profiles=ALL_PROFILES[:4],
        strategies=STRATEGIES,
        fleet_seed=FLEET_SEED,
        workers=workers,
        base_config=FuzzConfig(max_packets=budget),
        armed=False,
    )
    with orchestrator:
        started = time.perf_counter()
        report = orchestrator.run()
        cold = time.perf_counter() - started
        # Second run on the same (already initialised) runtime: what a
        # long-lived fleet service pays per sweep.
        started = time.perf_counter()
        orchestrator.run()
        warm = time.perf_counter() - started
    return report, cold, warm


def _measure_supervision_overhead(budget: int) -> tuple[float, float]:
    """Median warm dispatch time: supervised vs bare ``pool.map``.

    Same fleet, same persistent pool, interleaved measurements so CPU
    frequency drift hits both sides equally. Returns ``(supervised,
    unsupervised)`` medians over three rounds each.
    """
    orchestrator = FleetOrchestrator(
        profiles=ALL_PROFILES[:4],
        strategies=STRATEGIES,
        fleet_seed=FLEET_SEED,
        workers=2,
        base_config=FuzzConfig(max_packets=budget),
        armed=False,
    )
    with orchestrator:
        orchestrator.run()  # warm the pool and prime the worker contexts
        runtime = orchestrator._ensure_runtime()
        shard_specs = iter_shard_specs(orchestrator.specs())
        timings: dict[bool, list[float]] = {True: [], False: []}
        for _ in range(3):
            for supervised in (False, True):
                started = time.perf_counter()
                runtime.run_specs(shard_specs, supervised=supervised)
                timings[supervised].append(time.perf_counter() - started)
    return statistics.median(timings[True]), statistics.median(timings[False])


def _load_results() -> dict:
    if RESULTS_PATH.exists():
        return json.loads(RESULTS_PATH.read_text(encoding="utf-8"))
    return {"runs": []}


def bench_fleet_scaling(benchmark, quick):
    budget = scaled(quick, BUDGET, QUICK_BUDGET)

    def measure_all():
        return {
            workers: _run_fleet(workers, budget) for workers in WORKER_COUNTS
        }

    results = run_once(benchmark, measure_all)
    rows = []
    for workers, (report, cold, warm) in results.items():
        rows.append(
            {
                "workers": workers,
                "campaigns": len(report.campaigns),
                "makespan_sim_s": round(report.simulated_makespan_seconds, 2),
                "campaigns_per_sim_s": round(
                    report.campaigns_per_simulated_second, 6
                ),
                "dispatch_cold_s": round(cold, 2),
                "dispatch_warm_s": round(warm, 2),
            }
        )
    print_table("Fleet scaling — campaigns/sec vs workers", rows)

    single = results[1][0]
    quad = results[4][0]
    # Worker count must not change what the fleet finds or covers —
    # only the schedule-dependent summary fields may differ.
    schedule_keys = (
        "workers",
        "simulated_makespan_seconds",
        "campaigns_per_simulated_second",
    )
    single_dict = single.to_dict()
    quad_dict = quad.to_dict()
    for key in schedule_keys:
        single_dict.pop(key)
        quad_dict.pop(key)
    assert single_dict == quad_dict

    speedup = (
        quad.campaigns_per_simulated_second
        / single.campaigns_per_simulated_second
    )
    linear_fraction = speedup / 4
    print(
        f"\n1 -> 4 workers: {speedup:.2f}x campaigns/sec "
        f"({linear_fraction:.1%} of linear)"
    )

    supervised_s, unsupervised_s = _measure_supervision_overhead(budget)
    overhead = (
        supervised_s / unsupervised_s - 1.0 if unsupervised_s > 0 else 0.0
    )
    print(
        f"supervision overhead: {supervised_s:.2f}s supervised vs "
        f"{unsupervised_s:.2f}s bare map ({overhead:+.1%})"
    )

    data = _load_results()
    data.setdefault("runs", []).append(
        {
            "mode": "quick" if quick else "full",
            "budget": budget,
            "workers": [
                {
                    "workers": row["workers"],
                    "makespan_sim_s": row["makespan_sim_s"],
                    "campaigns_per_sim_s": row["campaigns_per_sim_s"],
                    "dispatch_cold_s": row["dispatch_cold_s"],
                    "dispatch_warm_s": row["dispatch_warm_s"],
                }
                for row in rows
            ],
            "speedup_1_to_4": round(speedup, 4),
            "linear_fraction_4w": round(linear_fraction, 4),
            "supervised_dispatch_s": round(supervised_s, 4),
            "unsupervised_dispatch_s": round(unsupervised_s, 4),
            "supervision_overhead": round(overhead, 4),
            "recorded": datetime.datetime.now(datetime.timezone.utc).isoformat(
                timespec="seconds"
            ),
        }
    )
    data["runs"] = data["runs"][-50:]
    RESULTS_PATH.write_text(json.dumps(data, indent=2) + "\n", encoding="utf-8")

    assert speedup >= LINEAR_FLOOR * 4, (
        f"fleet scaling regression: {speedup:.2f}x at 4 workers is below "
        f"the {LINEAR_FLOOR:.0%}-of-linear floor ({LINEAR_FLOOR * 4:.1f}x)"
    )

    budget_s = (
        unsupervised_s * (1 + SUPERVISION_OVERHEAD_FRACTION)
        + SUPERVISION_OVERHEAD_ABS_S
    )
    assert supervised_s <= budget_s, (
        f"supervision overhead regression: {supervised_s:.3f}s supervised "
        f"vs {unsupervised_s:.3f}s bare map exceeds the "
        f"{SUPERVISION_OVERHEAD_FRACTION:.0%} + "
        f"{SUPERVISION_OVERHEAD_ABS_S * 1000:.0f}ms budget ({budget_s:.3f}s)"
    )
