"""Reproduce the §IV.E case study: the Pixel 3 null-pointer dereference.

Runs the directed attack flow (SDP connect without pairing → config job →
Configuration Request with a dangling DCID and a garbage tail) against
the armed D2 profile, then prints the resulting tombstone — the Fig. 12
artefact.
"""

from __future__ import annotations

import pytest

from repro.core.packet_queue import PacketQueue
from repro.errors import ConnectionFailedError
from repro.hci.transport import VirtualLink
from repro.l2cap.constants import Psm
from repro.l2cap.packets import (
    configuration_request,
    connection_request,
    disconnection_request,
)
from repro.testbed.profiles import D2

from benchmarks.bench_helpers import run_once


def _attack_pixel3() -> tuple[object, str]:
    device = D2.build(armed=True)
    link = VirtualLink(clock=device.clock)
    device.attach_to(link)
    queue = PacketQueue(link)

    # Connect/disconnect/reconnect so CID 0x0040 dangles, then strike.
    first = queue.exchange(connection_request(psm=Psm.SDP, scid=0x0070))
    stale = first[0].fields["dcid"]
    queue.exchange(disconnection_request(dcid=stale, scid=0x0070, identifier=2))
    queue.exchange(connection_request(psm=Psm.SDP, scid=0x0071, identifier=3))

    attack = configuration_request(dcid=stale, identifier=4)
    attack.garbage = bytes.fromhex("D23A910E")
    with pytest.raises(ConnectionFailedError):
        queue.send(attack)
    return device, device.crash_dumps[0]


def bench_case_study_pixel3(benchmark):
    device, tombstone = run_once(benchmark, _attack_pixel3)
    print("\n=== §IV.E case study — Pixel 3 tombstone (cf. Fig. 12) ===")
    print(tombstone)
    assert not device.is_alive
    assert device.crash.vulnerability_id == "bluedroid-cidp-null-deref"
    assert "null pointer dereference" in tombstone
    assert "l2c_csm_execute(t_l2c_ccb*, unsigned short, void*)" in tombstone
    assert "fault addr 0x20" in tombstone
