"""Control-plane overhead gate: the service must cost ~nothing.

Two numbers, both against a live in-process control plane with a
pre-warmed pool:

* **submit → first shard**: wall time from the submit call returning
  until the job's telemetry run shows its first journal event — the
  queueing + dispatch latency a tenant pays before fuzzing starts.
* **service vs direct**: the same spec run end-to-end through the HTTP
  service (submit, poll, fetch report) versus straight through
  :class:`FleetOrchestrator` on an equally warm pool. The full-mode
  gate is the ISSUE's <5% overhead budget; ``--quick`` only catches
  blowups, since sub-second jobs cannot amortise the fixed HTTP and
  scheduling cost.

Every run appends to ``benchmarks/BENCH_service.json`` (same shape as
the other BENCH files: first run kept as baseline, last 50 runs).
"""

from __future__ import annotations

import datetime
import json
import tempfile
import time
from pathlib import Path

from repro.core.config import FuzzConfig
from repro.core.fleet import FleetOrchestrator
from repro.service import ControlPlaneThread, ServiceClient, ServiceConfig
from repro.testbed.profiles import PROFILES_BY_ID

from benchmarks.bench_helpers import print_table, run_once, scaled

BUDGET = 20_000
QUICK_BUDGET = 600

POOL_WORKERS = 2
PROFILES = ("D1", "D2")
STRATEGIES = ("sequential", "targeted")

#: The ISSUE's budget: running through the service may not cost more
#: than this fraction over the direct orchestrator run.
OVERHEAD_TOLERANCE = 0.05

#: Smoke-mode tolerance: a sub-second job pays the same fixed HTTP +
#: dispatch cost against far too little work to amortise it.
QUICK_TOLERANCE = 1.00

RESULTS_PATH = Path(__file__).resolve().parent / "BENCH_service.json"


def _spec(budget: int, seed: int) -> dict:
    # Disarmed: armed campaigns stop at the injected bug, so only a
    # disarmed run actually spends the budget being measured.
    return {
        "profiles": list(PROFILES),
        "strategies": list(STRATEGIES),
        "budget": budget,
        "seed": seed,
        "armed": False,
    }


def _direct_wall(budget: int, seed: int) -> float:
    """The same matrix straight through the orchestrator (warm pool
    excluded from the measurement by running inside one context)."""
    orchestrator = FleetOrchestrator(
        profiles=[PROFILES_BY_ID[d] for d in PROFILES],
        strategies=list(STRATEGIES),
        fleet_seed=seed,
        workers=POOL_WORKERS,
        base_config=FuzzConfig(max_packets=budget),
        armed=False,
    )
    with orchestrator:
        start = time.perf_counter()
        orchestrator.run()
        return time.perf_counter() - start


def _submit_to_first_event(client: ServiceClient, budget: int) -> float:
    """Seconds from submit returning until the run journals anything."""
    record = client.submit(_spec(budget, seed=97))
    job_id = record["job_id"]
    start = time.perf_counter()
    deadline = start + 120
    while time.perf_counter() < deadline:
        job = client.job(job_id)
        if job["run_id"] is not None:
            status = client.status(job_id)
            if status["events"] > 0:
                latency = time.perf_counter() - start
                client.wait(job_id, timeout=300)
                return latency
        if job["status"] not in ("queued", "running"):
            raise RuntimeError(f"job ended {job['status']}: {job['error']}")
        time.sleep(0.002)
    raise TimeoutError("no journal event within 120s of submit")


def _service_wall(client: ServiceClient, budget: int, seed: int) -> float:
    """Submit → poll to completion → fetch report, as a tenant would.

    The poll bounds are pinned tight: the default ``wait()`` cadence
    backs off toward 1 s (kind to a shared service, but up to a second
    of completion-detection latency), which would be measured as fake
    "overhead". The gate is about what the *service* costs, at the
    measurement resolution the old fixed 50 ms poll gave it.
    """
    start = time.perf_counter()
    record = client.submit(_spec(budget, seed))
    final = client.wait(
        record["job_id"], timeout=600, poll_floor=0.005, poll_cap=0.05
    )
    assert final["status"] == "finished", final["error"]
    client.report_text(record["job_id"])
    return time.perf_counter() - start


def _measure(budget: int) -> dict:
    with tempfile.TemporaryDirectory(prefix="bench-service-") as data_dir:
        # Everything on: WAL-intent durability is unconditional, and the
        # watchdog + wedge detection + auto-resume supervision all run
        # while the overhead is measured — the <5% budget is for the
        # crash-safe configuration, not a stripped-down one.
        config = ServiceConfig(
            data_dir=data_dir,
            port=0,
            pool_workers=POOL_WORKERS,
            watchdog_interval=1.0,
            wedge_deadline=120.0,
            auto_resume=True,
        )
        with ControlPlaneThread(config) as server:
            client = ServiceClient(server.base_url, tenant="bench")
            # Warm the shared pool (and the direct-run process caches)
            # so both arms measure steady-state dispatch, not start-up.
            client.wait(
                client.submit(_spec(min(budget, 500), seed=1))["job_id"],
                timeout=300,
            )
            first_shard = _submit_to_first_event(client, min(budget, 500))
            service_wall = _service_wall(client, budget, seed=42)
    direct_wall = _direct_wall(budget, seed=42)
    return {
        "first_shard_seconds": first_shard,
        "service_wall_seconds": service_wall,
        "direct_wall_seconds": direct_wall,
    }


def _load_results() -> dict:
    if RESULTS_PATH.exists():
        return json.loads(RESULTS_PATH.read_text(encoding="utf-8"))
    return {"baseline": {}, "runs": []}


def bench_service_overhead(benchmark, quick):
    budget = scaled(quick, BUDGET, QUICK_BUDGET)
    measured = run_once(benchmark, lambda: _measure(budget))
    overhead = (
        measured["service_wall_seconds"] - measured["direct_wall_seconds"]
    ) / measured["direct_wall_seconds"]
    mode = "quick" if quick else "full"
    entry = {
        "mode": mode,
        "budget": budget,
        "pool_workers": POOL_WORKERS,
        "campaigns": len(PROFILES) * len(STRATEGIES),
        "first_shard_seconds": round(measured["first_shard_seconds"], 4),
        "service_wall_seconds": round(measured["service_wall_seconds"], 4),
        "direct_wall_seconds": round(measured["direct_wall_seconds"], 4),
        "overhead_pct": round(100.0 * overhead, 2),
        "recorded": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
    }

    data = _load_results()
    data.setdefault("runs", []).append(entry)
    data["runs"] = data["runs"][-50:]
    baseline = data.setdefault("baseline", {}).get(mode)
    if baseline is None:
        data["baseline"][mode] = entry
    RESULTS_PATH.write_text(json.dumps(data, indent=2) + "\n", encoding="utf-8")

    rows = [entry]
    if baseline is not None:
        rows.append({**baseline, "mode": f"{mode} (first recorded)"})
    print_table("service — control-plane overhead vs direct run", rows)

    assert measured["first_shard_seconds"] < 5.0, (
        "submit→first-shard latency "
        f"{measured['first_shard_seconds']:.2f}s; dispatch onto the warm "
        "pool should be near-instant"
    )
    tolerance = QUICK_TOLERANCE if quick else OVERHEAD_TOLERANCE
    assert overhead <= tolerance, (
        f"service overhead {overhead:.1%} exceeds the {tolerance:.0%} "
        f"budget (service {measured['service_wall_seconds']:.3f}s vs "
        f"direct {measured['direct_wall_seconds']:.3f}s); the control "
        "plane must stay a thin layer over the warm fleet runtime"
    )
