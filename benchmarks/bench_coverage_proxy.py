"""Extension bench: Frankenstein-style coverage proxy and seed stability.

The paper lists code-coverage measurement as future work (§V, citing
Frankenstein). Our white-box testbed can do the next-best thing: count
the distinct (command, state, outcome) dispatcher branches each fuzzer
exercises — a deterministic proxy for stack code coverage — and verify
that the headline metrics are stable across campaign seeds.
"""

from __future__ import annotations

from repro.analysis.experiments import seed_sweep, transition_coverage_comparison

from benchmarks.bench_helpers import print_table, run_once, scaled

BUDGET = 10_000
QUICK_BUDGET = 1_500


def bench_coverage_proxy_and_seed_stability(benchmark, quick):
    budget = scaled(quick, BUDGET, QUICK_BUDGET)

    def _run():
        proxy = transition_coverage_comparison(max_packets=budget)
        sweep = seed_sweep(seeds=(1, 2, 3, 4, 5), max_packets=budget)
        return proxy, sweep

    proxy, sweep = run_once(benchmark, _run)

    rows = [
        {"fuzzer": name, "dispatcher_branches": count, "bar": "#" * (count // 5)}
        for name, count in proxy.items()
    ]
    print_table("Coverage proxy — distinct dispatcher branches exercised", rows)

    stat_rows = [
        {"metric": "MP ratio", **sweep.mp_ratio.as_dict()},
        {"metric": "PR ratio", **sweep.pr_ratio.as_dict()},
        {"metric": "mutation efficiency", **sweep.mutation_efficiency.as_dict()},
    ]
    print_table("Seed stability — 5 seeds, 10k packets each", stat_rows)
    print(f"state coverage per seed: {sweep.coverage_counts}")

    if quick:
        return
    assert proxy["L2Fuzz"] > max(proxy["Defensics"], proxy["BFuzz"], proxy["BSS"])
    assert sweep.mutation_efficiency.stdev < 0.03
    assert sweep.coverage_is_stable
