"""Reproduce paper Fig. 8: cumulative malformed packets vs transmitted.

The paper's log-scaled series: L2Fuzz climbs to ~70k malformed out of
100k transmitted, Defensics to ~2.4k, BFuzz to ~1.5k, and BSS generates
none (absent from the figure).
"""

from __future__ import annotations

from repro.analysis.comparison import run_comparison
from repro.analysis.metrics import render_ascii_curve

from benchmarks.bench_helpers import print_table, run_once, scaled

BUDGET = 30_000
QUICK_BUDGET = 2_000


def bench_fig8_mp_curve(benchmark, quick):
    budget = scaled(quick, BUDGET, QUICK_BUDGET)
    results = run_once(
        benchmark,
        lambda: run_comparison(max_packets=budget, sample_every=budget // 15),
    )

    rows = []
    for name, result in results.items():
        final = result.mp_points[-1]
        rows.append(
            {
                "fuzzer": name,
                "transmitted": final.x,
                "malformed": final.y,
                "mp_ratio_pct": round(100 * final.y / max(final.x, 1), 2),
            }
        )
    print_table("Fig. 8 — cumulative malformed packets (final points)", rows)
    print(render_ascii_curve(list(results["L2Fuzz"].mp_points), label="L2Fuzz MP curve"))

    if quick:
        return
    # Monotone growth for every fuzzer's curve.
    for result in results.values():
        ys = [p.y for p in result.mp_points]
        assert ys == sorted(ys)

    final = {name: r.mp_points[-1].y for name, r in results.items()}
    # Paper: "up to 46 times more malformed packets". At matched budgets
    # the measured gap is L2Fuzz ≈ 29x Defensics and ≈ 46x BFuzz.
    assert final["L2Fuzz"] > 20 * final["Defensics"]
    assert final["L2Fuzz"] > 20 * final["BFuzz"]
    assert final["BSS"] == 0  # not displayed on the paper's graph
