"""Multi-protocol campaign benchmark: wall pps + coverage per target.

One streaming campaign per registered fuzz target (l2cap, rfcomm, sdp,
obex) against the same device, measuring what the protocol-agnostic
redesign must not cost: wall-clock packets per second through the
shared engine, and full state-plan coverage for every protocol.

Every run appends to ``benchmarks/BENCH_multiprotocol.json`` so the
per-target perf trajectory accumulates across PRs, alongside the
hot-path gate's ``BENCH_hotpath.json``. The CI benchmark-smoke job runs
the ``--quick`` mode; the L2CAP row doubles as a sanity echo of the
dedicated hot-path gate (the >30% regression floor lives there).
"""

from __future__ import annotations

import datetime
import json
import time
from pathlib import Path

from repro.core.config import FuzzConfig
from repro.targets import TARGET_NAMES, make_target
from repro.testbed.profiles import D2
from repro.testbed.session import FuzzSession

from benchmarks.bench_helpers import print_table, run_once, scaled

BUDGET = 30_000
QUICK_BUDGET = 3_000

RESULTS_PATH = Path(__file__).resolve().parent / "BENCH_multiprotocol.json"


def _load_results() -> dict:
    if RESULTS_PATH.exists():
        return json.loads(RESULTS_PATH.read_text(encoding="utf-8"))
    return {"runs": []}


def _run_target(name: str, budget: int) -> dict:
    target = make_target(name)
    session = FuzzSession(
        profile=D2,
        config=FuzzConfig(seed=7, max_packets=budget),
        armed=False,
        zero_latency=True,
        retain_trace=False,
        target=target,
    )
    start = time.perf_counter()
    report = session.run()
    wall = time.perf_counter() - start
    return {
        "target": name,
        "packets": report.packets_sent,
        "wall_seconds": round(wall, 4),
        "wall_pps": round(report.packets_sent / wall, 1),
        "states_covered": len(report.covered_states),
        "state_space": report.state_space,
        "sweeps": report.sweeps_completed,
    }


def bench_multiprotocol(benchmark, quick):
    budget = scaled(quick, BUDGET, QUICK_BUDGET)
    rows = run_once(
        benchmark, lambda: [_run_target(name, budget) for name in TARGET_NAMES]
    )

    entry = {
        "mode": "quick" if quick else "full",
        "budget": budget,
        "targets": {row["target"]: row for row in rows},
        "recorded": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
    }
    data = _load_results()
    data.setdefault("runs", []).append(entry)
    data["runs"] = data["runs"][-50:]
    RESULTS_PATH.write_text(json.dumps(data, indent=2) + "\n", encoding="utf-8")

    print_table("multi-protocol — wall pps and coverage per target", rows)

    by_target = {row["target"]: row for row in rows}
    assert set(by_target) == set(TARGET_NAMES)
    for name in TARGET_NAMES:
        row = by_target[name]
        # Every protocol's campaign must spend its whole budget and
        # cover its full state plan — a routing regression in any
        # target shows up here before it shows up in the field.
        assert row["packets"] >= budget
        plan = make_target(name).state_plan()
        assert row["states_covered"] >= len(plan)
