"""Reproduce paper Table II: WAIT_CONNECT events and actions.

Probes a virtual device sitting in its passive-open posture with every
command of Table II and records the observed action (accept + transition
vs reject), then prints the reproduced table next to the paper's.
"""

from __future__ import annotations

from repro.analysis.sniffer import is_rejection
from repro.hci.transport import SimClock
from repro.l2cap.constants import CommandCode, ConnectionResult, Psm
from repro.l2cap.packets import L2capPacket, connection_request, default_packet
from repro.l2cap.states import ChannelState, WAIT_CONNECT_TABLE
from repro.stack.engine import HostStackEngine
from repro.stack.services import ServiceDirectory, ServiceRecord
from repro.stack.vendors import BLUEZ

from benchmarks.bench_helpers import print_table, run_once


def _fresh_engine() -> HostStackEngine:
    """A spec-strict (BlueZ-flavoured) acceptor in passive open."""
    services = ServiceDirectory([ServiceRecord(Psm.SDP, "SDP")])
    return HostStackEngine(BLUEZ, services, clock=SimClock())


def _probe(event: CommandCode) -> tuple[str, str]:
    """Send *event* to a fresh WAIT_CONNECT acceptor; observe the action."""
    engine = _fresh_engine()
    if event == CommandCode.CONNECTION_REQ:
        packet = connection_request(psm=Psm.SDP, scid=0x0060)
    else:
        packet = default_packet(event)
    responses = engine.handle_l2cap(packet)
    if not responses:
        return "Silently ignored", "No"
    response = responses[0]
    if is_rejection(response):
        # Command Reject or a refusal result — the paper's "Reject" row.
        return "Reject", "No"
    if (
        response.code == CommandCode.CONNECTION_RSP
        and response.fields.get("result") == ConnectionResult.SUCCESS
    ):
        block = engine.channels.live_channels()[0]
        assert block.state is ChannelState.WAIT_CONFIG
        return "Connect Rsp", "WAIT_CONFIG"
    return response.command_name, "No"


def _reproduce_table2() -> list[dict]:
    rows = []
    for paper_row in WAIT_CONNECT_TABLE:
        action, transition = _probe(paper_row.event)
        rows.append(
            {
                "event": paper_row.event.name,
                "paper_action": paper_row.action,
                "observed_action": action,
                "transition": transition,
            }
        )
    return rows


def bench_table2_wait_connect(benchmark):
    rows = run_once(benchmark, _reproduce_table2)
    print_table("Table II — WAIT_CONNECT events/actions", rows)
    accept_rows = [r for r in rows if r["observed_action"] == "Connect Rsp"]
    assert len(accept_rows) == 1
    assert accept_rows[0]["event"] == "CONNECTION_REQ"
    assert accept_rows[0]["transition"] == "WAIT_CONFIG"
    for row in rows:
        if row["event"] != "CONNECTION_REQ":
            assert row["observed_action"] in ("Reject", "Silently ignored")
