"""Bounded-memory streaming sniffer behaviour.

The fleet-scale requirement: a million-packet campaign with
``retain_trace=False`` must complete without per-packet object
retention. These tests drive a campaign-scale packet stream through the
sniffer and pin the memory bound, plus the guard rails around trace
consumers and the ``retain_trace`` plumbing through session and fleet.
"""

from __future__ import annotations

import tracemalloc

import pytest

from repro.analysis.sniffer import PacketSniffer
from repro.analysis.state_coverage import state_coverage
from repro.analysis.traceio import dump_trace
from repro.core.config import FuzzConfig
from repro.core.fleet import FleetOrchestrator
from repro.l2cap.constants import CommandCode
from repro.l2cap.packets import L2capPacket, echo_request
from repro.testbed.profiles import D1, D2
from repro.testbed.session import FuzzSession


class TestMillionPacketStream:
    def test_million_packet_campaign_stream_is_memory_bounded(self):
        """1,000,000 packets with retain_trace=False: no per-packet state.

        The sniffer sees the same observe stream a million-packet
        campaign produces. Traced memory may grow only by the sampled
        curve series (one point per thousand packets) — far below any
        per-packet retention, which would cost tens of megabytes.
        """
        sniffer = PacketSniffer(retain_trace=False)
        # A small rotation of realistic packets: malformed (garbage) and
        # clean requests, plus periodic responses.
        sent_pool = [
            L2capPacket(CommandCode.ECHO_REQ, 1, garbage=b"\xde\xad"),
            L2capPacket(CommandCode.CONNECTION_REQ, 2, {"psm": 0x0105, "scid": 0x41}),
            echo_request(b"ping", identifier=3),
        ]
        response = L2capPacket(CommandCode.COMMAND_REJECT, 1, {"reason": 0})

        total = 1_000_000
        warmup = 100_000
        tracemalloc.start()
        baseline = None
        for index in range(total):
            sniffer.observe_sent(sent_pool[index % 3], float(index))
            if index % 10 == 0:
                sniffer.observe_received(response, float(index))
            if index == warmup:
                baseline = tracemalloc.get_traced_memory()[0]
        final = tracemalloc.get_traced_memory()[0]
        tracemalloc.stop()

        assert sniffer.transmitted_count() == total
        assert sniffer.trace == []
        # ~900 curve samples of a few dozen bytes; allow generous slack
        # while staying orders of magnitude under per-packet retention.
        assert final - baseline < 1_000_000, (
            f"sniffer grew by {final - baseline} bytes between 100k and 1M "
            "packets — per-packet state is being retained"
        )
        # The streamed series stayed sampled, not per-packet.
        assert len(sniffer.streamed_mp_curve()) <= total // 1000 + 1

    def test_trace_consumers_fail_fast_without_retention(self):
        sniffer = PacketSniffer(retain_trace=False)
        sniffer.observe_sent(echo_request(), 0.0)
        with pytest.raises(ValueError, match="retain_trace"):
            sniffer.sent()
        with pytest.raises(ValueError, match="retain_trace"):
            sniffer.received()
        with pytest.raises(ValueError, match="retain_trace"):
            dump_trace(sniffer)

    def test_streamed_curve_rejects_mismatched_sampling(self):
        sniffer = PacketSniffer(retain_trace=False, sample_every=500)
        sniffer.observe_sent(echo_request(), 0.0)
        with pytest.raises(ValueError, match="sampled every 500"):
            sniffer.streamed_mp_curve(1000)


class TestCampaignParity:
    def _report(self, retain_trace: bool):
        session = FuzzSession(
            profile=D1,
            config=FuzzConfig(seed=23, max_packets=1_500),
            armed=False,
            zero_latency=True,
            retain_trace=retain_trace,
        )
        return session, session.run()

    def test_streaming_campaign_report_identical_to_retained(self):
        retained_session, retained = self._report(True)
        streaming_session, streaming = self._report(False)
        assert retained == streaming
        assert streaming_session.fuzzer.sniffer.trace == []
        assert retained_session.fuzzer.sniffer.trace
        assert state_coverage(streaming_session.fuzzer.sniffer) == set(
            retained.covered_states
        )

    def test_session_rejects_corpus_without_trace(self, tmp_path):
        with pytest.raises(ValueError, match="corpus"):
            FuzzSession(
                profile=D1,
                corpus_dir=str(tmp_path),
                retain_trace=False,
            )


class TestFleetRetention:
    def test_fleet_workers_default_to_streaming(self):
        fleet = FleetOrchestrator([D1, D2], ["sequential"])
        assert fleet.retain_trace is False

    def test_fleet_with_corpus_retains(self, tmp_path):
        fleet = FleetOrchestrator(
            [D1], ["sequential"], corpus_dir=str(tmp_path)
        )
        assert fleet.retain_trace is True

    def test_fleet_rejects_corpus_without_trace(self, tmp_path):
        with pytest.raises(ValueError, match="corpus"):
            FleetOrchestrator(
                [D1], ["sequential"], corpus_dir=str(tmp_path), retain_trace=False
            )

    def test_streaming_fleet_report_matches_retained(self):
        config = FuzzConfig(max_packets=600)
        streaming = FleetOrchestrator(
            [D1], ["sequential"], base_config=config, retain_trace=False
        ).run()
        retained = FleetOrchestrator(
            [D1], ["sequential"], base_config=config, retain_trace=True
        ).run()
        assert streaming.to_dict() == retained.to_dict()
