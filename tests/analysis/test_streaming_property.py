"""Streaming vs retained-trace analysis agreement (hypothesis).

The analysis layer computes coverage and the Fig. 8/9 series
incrementally at observe time. These properties pin the invariant the
whole refactor rests on: for arbitrary traces, a streaming sniffer
(``retain_trace=False``) and a retained-trace sniffer agree on every
derived metric — coverage, MP/PR curves, counters and the
packets-to-coverage milestone computed by trace replay.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.analysis.metrics import mp_curve, pr_curve
from repro.analysis.sniffer import Direction, PacketSniffer
from repro.analysis.state_coverage import (
    StateCoverageAnalyzer,
    packets_to_coverage,
    state_coverage,
)
from repro.l2cap.constants import CommandCode, ConnectionResult
from repro.l2cap.packets import COMMAND_SPECS, L2capPacket


@st.composite
def _trace_strategy(draw):
    """A plausible mixed-direction trace with occasional handshakes."""
    events = []
    length = draw(st.integers(min_value=0, max_value=60))
    for index in range(length):
        kind = draw(st.integers(min_value=0, max_value=9))
        identifier = draw(st.integers(min_value=1, max_value=8))
        if kind == 0:
            # Connection handshake: request out, success response in.
            scid = draw(st.integers(min_value=0x40, max_value=0x45))
            dcid = draw(st.integers(min_value=0x40, max_value=0x45))
            events.append(
                (
                    Direction.SENT,
                    L2capPacket(
                        CommandCode.CONNECTION_REQ,
                        identifier,
                        {"psm": 0x1001, "scid": scid},
                    ),
                )
            )
            events.append(
                (
                    Direction.RECEIVED,
                    L2capPacket(
                        CommandCode.CONNECTION_RSP,
                        identifier,
                        {
                            "dcid": dcid,
                            "scid": scid,
                            "result": ConnectionResult.SUCCESS,
                            "status": 0,
                        },
                    ),
                )
            )
        elif kind == 1:
            events.append(
                (
                    Direction.RECEIVED,
                    L2capPacket(
                        CommandCode.CONFIGURATION_RSP,
                        identifier,
                        {"scid": draw(st.integers(0x40, 0x45)), "flags": 0, "result": 0},
                    ),
                )
            )
        elif kind == 2:
            events.append(
                (
                    Direction.RECEIVED,
                    L2capPacket(CommandCode.COMMAND_REJECT, identifier, {"reason": 0}),
                )
            )
        else:
            code = draw(st.sampled_from(sorted(COMMAND_SPECS)))
            direction = Direction.SENT if kind < 8 else Direction.RECEIVED
            garbage = draw(st.binary(max_size=6))
            events.append(
                (direction, L2capPacket(code, identifier, garbage=garbage))
            )
    return events


def _observe_all(sniffer: PacketSniffer, events) -> None:
    for index, (direction, packet) in enumerate(events):
        if direction is Direction.SENT:
            sniffer.observe_sent(packet, float(index))
        else:
            sniffer.observe_received(packet, float(index))


def _replay_packets_to_coverage(sniffer: PacketSniffer, target: int) -> int | None:
    """The historical trace-replay oracle for packets-to-coverage."""
    analyzer = StateCoverageAnalyzer()
    sent = 0
    for entry in sniffer.trace:
        if entry.direction is Direction.SENT:
            sent += 1
        analyzer.feed(entry)
        if analyzer.coverage_count >= target:
            return sent
    return None


class TestStreamingAgreesWithRetained:
    @given(_trace_strategy(), st.integers(min_value=1, max_value=9))
    @settings(max_examples=150, deadline=None)
    def test_curves_and_coverage_agree(self, events, sample_every):
        retained = PacketSniffer(retain_trace=True, sample_every=10_000_000)
        streaming = PacketSniffer(retain_trace=False, sample_every=sample_every)
        _observe_all(retained, events)
        _observe_all(streaming, events)

        # Counters.
        assert retained.transmitted_count() == streaming.transmitted_count()
        assert retained.malformed_count() == streaming.malformed_count()
        assert retained.received_count() == streaming.received_count()
        assert retained.rejection_count() == streaming.rejection_count()
        assert retained.observed_target_cids == streaming.observed_target_cids

        # Coverage: streamed, replayed, and analyzer-replayed all agree.
        assert state_coverage(retained) == state_coverage(streaming)
        assert StateCoverageAnalyzer().analyze(retained) == state_coverage(streaming)

        # Fig. 8/9 series: replay of the retained trace (its own
        # sample_every is unreachable, forcing the replay path) against
        # the streamed series.
        assert mp_curve(retained, sample_every) == mp_curve(streaming, sample_every)
        assert pr_curve(retained, sample_every) == pr_curve(streaming, sample_every)

    @given(_trace_strategy(), st.integers(min_value=1, max_value=20))
    @settings(max_examples=150, deadline=None)
    def test_packets_to_coverage_agrees_with_replay(self, events, target):
        retained = PacketSniffer(retain_trace=True)
        streaming = PacketSniffer(retain_trace=False)
        _observe_all(retained, events)
        _observe_all(streaming, events)
        expected = _replay_packets_to_coverage(retained, target)
        assert packets_to_coverage(streaming, target) == expected
        assert packets_to_coverage(retained, target) == expected

    @given(_trace_strategy())
    @settings(max_examples=50, deadline=None)
    def test_streaming_retains_no_trace(self, events):
        streaming = PacketSniffer(retain_trace=False)
        _observe_all(streaming, events)
        assert streaming.trace == []

    @given(_trace_strategy())
    @settings(max_examples=50, deadline=None)
    def test_clear_resets_streaming_state(self, events):
        sniffer = PacketSniffer(retain_trace=False)
        _observe_all(sniffer, events)
        sniffer.clear()
        fresh = PacketSniffer(retain_trace=False)
        assert state_coverage(sniffer) == state_coverage(fresh)
        assert sniffer.transmitted_count() == 0
        assert sniffer.coverage_unlocks == fresh.coverage_unlocks
        assert packets_to_coverage(sniffer, 2) is None
