"""Tests for PRETT-style state-coverage inference.

The key property: the analyzer infers target states from the *wire* only,
and its inference agrees with the virtual device's ground-truth state
history.
"""

from __future__ import annotations

from repro.analysis.state_coverage import (
    StateCoverageAnalyzer,
    coverage_report,
    state_coverage,
)
from repro.core.state_guiding import StateGuide
from repro.core.target_scanning import TargetScanner
from repro.l2cap.states import ACCEPTOR_REACHABLE_STATES, ChannelState

from tests.conftest import make_rig


def _walk_plan(device, queue, states=None):
    scan = TargetScanner(queue, device.inquiry, device.sdp_browse).scan()
    guide = StateGuide(queue, scan)
    for state in states if states is not None else guide.plan():
        guided = guide.enter(state)
        guide.leave(guided)
    return state_coverage(queue.sniffer)


class TestInference:
    def test_empty_trace_covers_only_closed(self):
        analyzer = StateCoverageAnalyzer()
        assert analyzer.coverage() == frozenset({ChannelState.CLOSED})
        assert analyzer.coverage_count == 1

    def test_full_plan_walk_infers_all_13_states(self):
        device, _, queue = make_rig()
        covered = _walk_plan(device, queue)
        assert covered == ACCEPTOR_REACHABLE_STATES

    def test_inference_agrees_with_device_ground_truth(self):
        device, _, queue = make_rig()
        covered = _walk_plan(device, queue)
        ground_truth = device.engine.visited_states() | {ChannelState.CLOSED}
        assert covered <= ground_truth

    def test_inference_never_claims_initiator_states(self):
        device, _, queue = make_rig()
        covered = _walk_plan(device, queue)
        from repro.l2cap.states import INITIATOR_ONLY_STATES

        assert not covered & INITIATOR_ONLY_STATES

    def test_connect_only_covers_three_states(self):
        """A BSS-style walk demonstrates exactly the paper's 3 states.

        Uses a passive-only service catalogue: an initiating port would
        legitimately expose extra configuration states during the scan.
        """
        from tests.conftest import make_services

        device, _, queue = make_rig(
            services=make_services(open_initiating=False)
        )
        covered = _walk_plan(device, queue, states=[ChannelState.WAIT_CONFIG])
        assert covered == frozenset(
            {
                ChannelState.CLOSED,
                ChannelState.WAIT_CONNECT,
                ChannelState.WAIT_CONFIG,
            }
        )

    def test_open_walk_adds_config_flavours(self):
        device, _, queue = make_rig()
        covered = _walk_plan(device, queue, states=[ChannelState.OPEN])
        assert ChannelState.OPEN in covered
        assert ChannelState.WAIT_SEND_CONFIG in covered
        assert ChannelState.WAIT_CONFIG_RSP in covered

    def test_move_states_inferred(self):
        device, _, queue = make_rig()
        covered = _walk_plan(device, queue, states=[ChannelState.WAIT_MOVE_CONFIRM])
        assert ChannelState.WAIT_MOVE in covered
        assert ChannelState.WAIT_MOVE_CONFIRM in covered

    def test_wait_disconnect_inferred_from_target_initiative(self):
        device, _, queue = make_rig()
        covered = _walk_plan(device, queue, states=[ChannelState.WAIT_DISCONNECT])
        assert ChannelState.WAIT_DISCONNECT in covered


class TestCoverageReport:
    def test_report_shape(self):
        report = coverage_report(frozenset({ChannelState.CLOSED, ChannelState.OPEN}))
        assert report["count"] == 2
        assert report["total"] == 19
        assert "CLOSED" in report["states"]
        assert "WAIT_MOVE" in report["missing"]
        assert len(report["states"]) + len(report["missing"]) == 19
