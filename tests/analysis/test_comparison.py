"""Tests for the four-fuzzer comparison harness helpers."""

from __future__ import annotations

import pytest

from repro.analysis.comparison import (
    FUZZER_ORDER,
    FuzzerRunResult,
    figure10_bars,
    figure11_maps,
    run_baseline_trial,
    run_l2fuzz_trial,
    table7_rows,
)
from repro.analysis.metrics import CumulativePoint, MutationEfficiency
from repro.baselines.bss import BssFuzzer
from repro.l2cap.states import ChannelState


def _result(name, coverage=(ChannelState.CLOSED,)):
    return FuzzerRunResult(
        name=name,
        efficiency=MutationEfficiency(100, 50, 80, 20, 1.0),
        mp_points=(CumulativePoint(100, 50),),
        pr_points=(CumulativePoint(80, 20),),
        coverage=frozenset(coverage),
    )


class TestRenderingHelpers:
    def test_table7_rows_follow_paper_order(self):
        results = {name: _result(name) for name in reversed(FUZZER_ORDER)}
        rows = table7_rows(results)
        assert [row["fuzzer"] for row in rows] == list(FUZZER_ORDER)

    def test_table7_rows_skip_missing_fuzzers(self):
        rows = table7_rows({"BSS": _result("BSS")})
        assert len(rows) == 1

    def test_figure10_counts_states(self):
        results = {
            "L2Fuzz": _result(
                "L2Fuzz", (ChannelState.CLOSED, ChannelState.OPEN)
            ),
            "BSS": _result("BSS"),
        }
        assert figure10_bars(results) == {"L2Fuzz": 2, "BSS": 1}

    def test_figure11_maps_are_sorted_names(self):
        results = {
            "BSS": _result("BSS", (ChannelState.OPEN, ChannelState.CLOSED))
        }
        assert figure11_maps(results)["BSS"] == ["CLOSED", "OPEN"]

    def test_coverage_count_property(self):
        assert _result("x", (ChannelState.CLOSED, ChannelState.OPEN)).coverage_count == 2


class TestTrialRunners:
    def test_l2fuzz_trial_small_budget(self):
        result = run_l2fuzz_trial(max_packets=1500)
        assert result.name == "L2Fuzz"
        assert result.efficiency.transmitted >= 1500
        assert result.mp_points[-1].y > 0

    def test_baseline_trial_small_budget(self):
        result = run_baseline_trial(BssFuzzer, max_packets=300)
        assert result.name == "BSS"
        assert result.efficiency.malformed == 0
        assert result.efficiency.packets_per_second == pytest.approx(1.95)

    def test_trials_are_deterministic(self):
        a = run_l2fuzz_trial(max_packets=1000, seed=5)
        b = run_l2fuzz_trial(max_packets=1000, seed=5)
        assert a.efficiency == b.efficiency
        assert a.coverage == b.coverage
