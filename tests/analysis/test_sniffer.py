"""Tests for the packet sniffer (Wireshark substitute)."""

from __future__ import annotations

from repro.analysis.sniffer import Direction, PacketSniffer, is_rejection
from repro.l2cap.constants import (
    CommandCode,
    ConfigResult,
    ConnectionResult,
    InfoResult,
    RejectReason,
)
from repro.l2cap.packets import (
    L2capPacket,
    command_reject,
    configuration_request,
    connection_request,
    connection_response,
    disconnection_request,
    echo_request,
)


class TestRejectionClassification:
    def test_command_reject_is_rejection(self):
        assert is_rejection(command_reject(RejectReason.INVALID_CID, 1))

    def test_refused_connection_is_rejection(self):
        rsp = connection_response(
            dcid=0, scid=0x60, result=ConnectionResult.REFUSED_PSM_NOT_SUPPORTED
        )
        assert is_rejection(rsp)

    def test_successful_connection_is_not(self):
        rsp = connection_response(dcid=0x40, scid=0x60, result=ConnectionResult.SUCCESS)
        assert not is_rejection(rsp)

    def test_pending_connection_is_not(self):
        rsp = connection_response(dcid=0, scid=0x60, result=ConnectionResult.PENDING)
        assert not is_rejection(rsp)

    def test_rejected_config_rsp_is_rejection(self):
        rsp = L2capPacket(
            CommandCode.CONFIGURATION_RSP,
            1,
            {"scid": 0x40, "flags": 0, "result": ConfigResult.REJECTED},
        )
        assert is_rejection(rsp)

    def test_not_supported_info_rsp_is_rejection(self):
        rsp = L2capPacket(
            CommandCode.INFORMATION_RSP,
            1,
            {"info_type": 9, "result": InfoResult.NOT_SUPPORTED},
        )
        assert is_rejection(rsp)

    def test_echo_rsp_is_not_rejection(self):
        assert not is_rejection(L2capPacket(CommandCode.ECHO_RSP, 1))

    def test_refused_le_connection_is_rejection(self):
        rsp = L2capPacket(
            CommandCode.LE_CREDIT_BASED_CONNECTION_RSP,
            1,
            {"dcid": 0, "mtu": 0, "mps": 0, "credit": 0, "result": 2},
        )
        assert is_rejection(rsp)


class TestTraceCounters:
    def test_counts_both_directions(self):
        sniffer = PacketSniffer()
        sniffer.observe_sent(echo_request(), 0.0)
        sniffer.observe_received(L2capPacket(CommandCode.ECHO_RSP, 1), 0.1)
        assert sniffer.transmitted_count() == 1
        assert sniffer.received_count() == 1
        assert len(sniffer.sent()) == 1
        assert len(sniffer.received()) == 1

    def test_malformed_counted(self):
        sniffer = PacketSniffer()
        packet = echo_request()
        packet.garbage = b"\x00"
        sniffer.observe_sent(packet, 0.0)
        sniffer.observe_sent(echo_request(), 0.1)
        assert sniffer.malformed_count() == 1

    def test_rejections_counted(self):
        sniffer = PacketSniffer()
        sniffer.observe_received(command_reject(0, 1), 0.0)
        sniffer.observe_received(L2capPacket(CommandCode.ECHO_RSP, 1), 0.1)
        assert sniffer.rejection_count() == 1

    def test_clear_resets_everything(self):
        sniffer = PacketSniffer()
        sniffer.observe_sent(echo_request(), 0.0)
        sniffer.clear()
        assert sniffer.transmitted_count() == 0
        assert not sniffer.trace


class TestDynamicAllocationTracking:
    """The sniffer learns target CIDs from the wire, like an analyst."""

    def test_successful_connection_teaches_cid(self):
        sniffer = PacketSniffer()
        rsp = connection_response(
            dcid=0x0040, scid=0x60, result=ConnectionResult.SUCCESS
        )
        sniffer.observe_received(rsp, 0.0)
        assert 0x0040 in sniffer.observed_target_cids

    def test_config_to_known_cid_is_clean(self):
        sniffer = PacketSniffer()
        sniffer.observe_received(
            connection_response(dcid=0x0040, scid=0x60, result=ConnectionResult.SUCCESS),
            0.0,
        )
        entry = sniffer.observe_sent(configuration_request(dcid=0x0040), 0.1)
        assert not entry.malformed

    def test_config_to_unknown_cid_is_malformed(self):
        sniffer = PacketSniffer()
        entry = sniffer.observe_sent(configuration_request(dcid=0x0999), 0.0)
        assert entry.malformed

    def test_disconnection_forgets_cid(self):
        sniffer = PacketSniffer()
        sniffer.observe_received(
            connection_response(dcid=0x0040, scid=0x60, result=ConnectionResult.SUCCESS),
            0.0,
        )
        sniffer.observe_received(
            L2capPacket(
                CommandCode.DISCONNECTION_RSP, 2, {"dcid": 0x0040, "scid": 0x60}
            ),
            0.1,
        )
        assert 0x0040 not in sniffer.observed_target_cids
        entry = sniffer.observe_sent(disconnection_request(dcid=0x0040, scid=0x60), 0.2)
        assert entry.malformed  # the CID is stale now

    def test_failed_send_still_traced(self):
        sniffer = PacketSniffer()
        sniffer.observe_sent(connection_request(psm=0x0300, scid=0x60), 0.0)
        assert sniffer.transmitted_count() == 1
        assert sniffer.trace[0].direction is Direction.SENT
