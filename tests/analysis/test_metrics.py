"""Tests for mutation-efficiency metrics and the Fig. 8/9 curves."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.metrics import (
    MutationEfficiency,
    measure,
    mp_curve,
    pr_curve,
    render_ascii_curve,
)
from repro.analysis.sniffer import PacketSniffer
from repro.l2cap.constants import CommandCode
from repro.l2cap.packets import L2capPacket, command_reject, echo_request


def _garbage_packet():
    packet = echo_request()
    packet.garbage = b"\x00"
    return packet


class TestMutationEfficiency:
    def test_paper_formula(self):
        """Table VII: efficiency = MP * (1 - PR) for the L2Fuzz row."""
        eff = MutationEfficiency(
            transmitted=100_000,
            malformed=69_960,
            received=100_000,
            rejections=32_490,
            elapsed_seconds=100_000 / 524.27,
        )
        assert eff.mp_ratio == pytest.approx(0.6996)
        assert eff.pr_ratio == pytest.approx(0.3249)
        assert eff.mutation_efficiency == pytest.approx(0.4723, abs=1e-4)
        assert eff.packets_per_second == pytest.approx(524.27)

    def test_zero_division_guards(self):
        eff = MutationEfficiency(0, 0, 0, 0, 0.0)
        assert eff.mp_ratio == 0.0
        assert eff.pr_ratio == 0.0
        assert eff.mutation_efficiency == 0.0
        assert eff.packets_per_second == 0.0

    def test_table_row_rendering(self):
        eff = MutationEfficiency(1000, 700, 800, 260, 10.0)
        row = eff.as_table_row("L2Fuzz")
        assert row["fuzzer"] == "L2Fuzz"
        assert row["mp_ratio"] == 70.0
        assert row["pr_ratio"] == 32.5
        assert row["mutation_efficiency"] == 47.25
        assert row["pps"] == 100.0

    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=100)
    def test_efficiency_bounded(self, malformed, rejections):
        eff = MutationEfficiency(
            transmitted=10_000,
            malformed=malformed,
            received=10_000,
            rejections=rejections,
            elapsed_seconds=1.0,
        )
        assert 0.0 <= eff.mutation_efficiency <= 1.0

    def test_measure_from_sniffer(self):
        sniffer = PacketSniffer()
        sniffer.observe_sent(_garbage_packet(), 0.0)
        sniffer.observe_sent(echo_request(), 0.1)
        sniffer.observe_received(command_reject(0, 1), 0.2)
        sniffer.observe_received(L2capPacket(CommandCode.ECHO_RSP, 1), 0.3)
        eff = measure(sniffer, elapsed_seconds=2.0)
        assert eff.mp_ratio == 0.5
        assert eff.pr_ratio == 0.5
        assert eff.packets_per_second == 1.0


class TestCurves:
    def _sniffer(self, n=10):
        sniffer = PacketSniffer()
        for i in range(n):
            sniffer.observe_sent(
                _garbage_packet() if i % 2 == 0 else echo_request(), float(i)
            )
            sniffer.observe_received(
                command_reject(0, 1) if i % 5 == 0 else L2capPacket(CommandCode.ECHO_RSP, 1),
                float(i),
            )
        return sniffer

    def test_mp_curve_is_monotonic(self):
        points = mp_curve(self._sniffer(50), sample_every=10)
        xs = [p.x for p in points]
        ys = [p.y for p in points]
        assert xs == sorted(xs)
        assert ys == sorted(ys)

    def test_mp_curve_final_point_matches_totals(self):
        sniffer = self._sniffer(50)
        points = mp_curve(sniffer, sample_every=7)
        assert points[-1].x == sniffer.transmitted_count()
        assert points[-1].y == sniffer.malformed_count()

    def test_pr_curve_final_point_matches_totals(self):
        sniffer = self._sniffer(50)
        points = pr_curve(sniffer, sample_every=7)
        assert points[-1].x == sniffer.received_count()
        assert points[-1].y == sniffer.rejection_count()

    def test_empty_trace_yields_single_origin_point(self):
        points = mp_curve(PacketSniffer())
        assert len(points) == 1
        assert points[0].x == 0

    def test_ascii_rendering_does_not_crash(self):
        text = render_ascii_curve(mp_curve(self._sniffer(30)), label="MP")
        assert "MP" in text
        assert render_ascii_curve([], label="empty") == "empty: (no data)"
