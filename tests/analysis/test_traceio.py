"""Tests for trace serialisation and reload."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.metrics import measure
from repro.analysis.state_coverage import state_coverage
from repro.analysis.traceio import (
    dump_trace,
    load_trace,
    packets_from_hex,
    packets_to_hex,
    read_trace,
    rebuild_sniffer,
    save_trace,
)
from repro.core.config import FuzzConfig
from repro.core.fuzzer import L2Fuzz
from repro.corpus.entry import dict_to_entry, entry_from_packets, entry_to_dict

from tests.conftest import make_rig


def _campaign_sniffer(max_packets=600):
    device, link, _ = make_rig(armed=False)
    fuzzer = L2Fuzz(
        link=link,
        inquiry=device.inquiry,
        browse=device.sdp_browse,
        config=FuzzConfig(max_packets=max_packets),
    )
    fuzzer.run()
    return fuzzer.sniffer


class TestRoundTrip:
    def test_dump_and_load_preserve_length(self):
        sniffer = _campaign_sniffer()
        entries = load_trace(dump_trace(sniffer))
        assert len(entries) == len(sniffer.trace)

    def test_reloaded_metrics_match_original(self):
        """The key property: analysis on a saved trace equals the live run."""
        sniffer = _campaign_sniffer()
        reloaded = rebuild_sniffer(load_trace(dump_trace(sniffer)))
        original = measure(sniffer, 1.0)
        recomputed = measure(reloaded, 1.0)
        assert recomputed.transmitted == original.transmitted
        assert recomputed.malformed == original.malformed
        assert recomputed.received == original.received
        assert recomputed.rejections == original.rejections

    def test_reloaded_state_coverage_matches(self):
        sniffer = _campaign_sniffer(1500)
        reloaded = rebuild_sniffer(load_trace(dump_trace(sniffer)))
        assert state_coverage(reloaded) == state_coverage(sniffer)

    def test_directions_and_flags_survive(self):
        sniffer = _campaign_sniffer(100)
        entries = load_trace(dump_trace(sniffer))
        for original, reloaded in zip(sniffer.trace, entries):
            assert reloaded.direction is original.direction
            assert reloaded.malformed == original.malformed
            assert reloaded.rejection == original.rejection
            assert reloaded.packet.encode() == original.packet.encode()

    def test_file_round_trip(self, tmp_path):
        sniffer = _campaign_sniffer(200)
        path = tmp_path / "trace.jsonl"
        count = save_trace(sniffer, path)
        assert count == len(sniffer.trace)
        reloaded = read_trace(path)
        assert reloaded.transmitted_count() == sniffer.transmitted_count()

    def test_blank_lines_skipped(self):
        sniffer = _campaign_sniffer(50)
        text = dump_trace(sniffer) + "\n\n\n"
        assert len(load_trace(text)) == len(sniffer.trace)


class TestPacketSequences:
    """Hex packet-sequence helpers, the corpus entry wire format."""

    def test_hex_round_trip_is_byte_exact(self):
        sniffer = _campaign_sniffer(150)
        packets = [entry.packet for entry in sniffer.sent()]
        reloaded = packets_from_hex(packets_to_hex(packets))
        assert [p.encode() for p in reloaded] == [p.encode() for p in packets]

    def test_corpus_entry_round_trips_through_json(self):
        """Satellite property: a campaign-recorded corpus entry survives
        serialisation with its packets byte-exact and its ID intact."""
        sniffer = _campaign_sniffer(150)
        packets = [entry.packet for entry in sniffer.sent()][:20]
        entry = entry_from_packets(
            packets,
            unlocked=["WAIT_CONNECT"],
            covered=["CLOSED", "WAIT_CONNECT"],
            device_id="D2",
            strategy="sequential",
            seed=7,
            armed=False,
        )
        reloaded = dict_to_entry(json.loads(json.dumps(entry_to_dict(entry))))
        assert reloaded == entry
        assert reloaded.entry_id == entry.entry_id
        assert [p.encode() for p in reloaded.decode_packets()] == [
            p.encode() for p in packets
        ]

    @given(
        sniffer_budget=st.just(80),
        sort_keys=st.booleans(),
        indent=st.sampled_from([None, 2]),
    )
    @settings(max_examples=8, deadline=None)
    def test_entry_id_stable_under_serialisation_style(
        self, sniffer_budget, sort_keys, indent
    ):
        """Whatever JSON style a writer picked — sorted or insertion
        keys, compact or indented — the reloaded ID is identical."""
        sniffer = _campaign_sniffer(sniffer_budget)
        packets = [entry.packet for entry in sniffer.sent()][:10]
        entry = entry_from_packets(
            packets, ["CLOSED"], ["CLOSED"], "D2", "sequential", 7, False
        )
        rendered = json.dumps(
            entry_to_dict(entry), sort_keys=sort_keys, indent=indent
        )
        assert dict_to_entry(json.loads(rendered)).entry_id == entry.entry_id
