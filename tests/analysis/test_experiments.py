"""Tests for multi-seed statistics and the coverage proxy."""

from __future__ import annotations

import pytest

from repro.analysis.experiments import (
    MetricSummary,
    seed_sweep,
    transition_coverage_comparison,
)


class TestMetricSummary:
    def test_mean_and_spread(self):
        summary = MetricSummary((0.6, 0.7, 0.8))
        assert summary.mean == pytest.approx(0.7)
        assert summary.minimum == 0.6
        assert summary.maximum == 0.8
        assert summary.stdev == pytest.approx(0.1)

    def test_single_value_has_zero_stdev(self):
        assert MetricSummary((0.5,)).stdev == 0.0

    def test_as_dict_rounds(self):
        row = MetricSummary((0.12345, 0.12355)).as_dict()
        assert row["mean"] == pytest.approx(0.1235)


class TestSeedSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        return seed_sweep(seeds=(1, 2, 3), max_packets=4_000)

    def test_ratios_stay_in_paper_band_across_seeds(self, sweep):
        assert 0.60 < sweep.mp_ratio.minimum
        assert sweep.mp_ratio.maximum < 0.80
        assert 0.25 < sweep.pr_ratio.minimum
        assert sweep.pr_ratio.maximum < 0.40

    def test_low_seed_variance(self, sweep):
        """The headline metric is not seed luck."""
        assert sweep.mutation_efficiency.stdev < 0.03

    def test_state_coverage_is_seed_independent(self, sweep):
        assert sweep.coverage_is_stable
        assert sweep.coverage_counts[0] == 13

    def test_branch_counts_recorded(self, sweep):
        assert all(count > 50 for count in sweep.transition_branches)


class TestCoverageProxy:
    def test_l2fuzz_exercises_most_dispatcher_branches(self):
        """Frankenstein-style proxy: the stateful, parse-surviving fuzzer
        reaches more distinct (command, state, outcome) branches."""
        results = transition_coverage_comparison(max_packets=5_000)
        assert results["L2Fuzz"] > results["Defensics"]
        assert results["L2Fuzz"] > results["BFuzz"]
        assert results["L2Fuzz"] > results["BSS"]
        assert results["BSS"] < 25  # all-valid traffic exercises few branches
