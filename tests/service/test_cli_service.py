"""CLI ↔ control-plane integration: ``repro jobs`` over live HTTP."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.service import ControlPlaneThread, ServiceConfig


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    config = ServiceConfig(
        data_dir=tmp_path_factory.mktemp("cli-service"),
        port=0,
        pool_workers=1,
    )
    with ControlPlaneThread(config) as live:
        yield live


def jobs_cmd(server, *argv: str) -> list[str]:
    return ["jobs", *argv[:1], "--url", server.base_url, *argv[1:]]


class TestJobsCli:
    def test_submit_wait_and_show(self, server, capsys):
        rc = main(
            jobs_cmd(
                server,
                "submit",
                "--tenant",
                "cli-alpha",
                "--profiles",
                "d1",
                "--budget",
                "40",
                "--wait",
                "--json",
            )
        )
        assert rc == 0
        record = json.loads(capsys.readouterr().out)
        assert record["status"] == "finished"
        assert record["spec"]["profiles"] == ["D1"]

        rc = main(
            jobs_cmd(
                server,
                "show",
                "--tenant",
                "cli-alpha",
                record["job_id"],
                "--report",
            )
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert record["job_id"] in out
        assert '"campaigns"' in out

    def test_list_table_and_json(self, server, capsys):
        rc = main(jobs_cmd(server, "list", "--tenant", "cli-alpha"))
        assert rc == 0
        assert "finished" in capsys.readouterr().out

        rc = main(jobs_cmd(server, "list", "--tenant", "cli-alpha", "--json"))
        assert rc == 0
        rows = json.loads(capsys.readouterr().out)
        assert rows and all(row["spec"]["tenant"] == "cli-alpha" for row in rows)

    def test_other_tenant_sees_nothing(self, server, capsys):
        rc = main(jobs_cmd(server, "list", "--tenant", "cli-beta"))
        assert rc == 0
        assert "no jobs for tenant" in capsys.readouterr().out

    def test_cancel_unknown_job_exits(self, server, capsys):
        with pytest.raises(SystemExit):
            main(
                jobs_cmd(
                    server, "cancel", "--tenant", "cli-alpha", "job-nope"
                )
            )

    def test_bad_submit_exits_with_message(self, server, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(
                jobs_cmd(
                    server,
                    "submit",
                    "--tenant",
                    "cli-alpha",
                    "--profiles",
                    "D99",
                )
            )
        assert "unknown profile" in str(excinfo.value)
