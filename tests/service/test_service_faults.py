"""Service-level fault injection: plans, typed IO failures, clean aborts.

The ENOSPC contract: a failed journal or manifest write surfaces as a
typed :class:`JournalWriteError`, the affected job lands
``aborted(resumable)`` with the cause as its failure reason — never a
raw traceback — and an unacknowledged admission holds no quota.
"""

from __future__ import annotations

import errno

import pytest

from repro.core.faults import (
    SERVICE_FAULT_SITES,
    ServiceFaultPlan,
    ServiceFaultSpec,
    install_service_faults,
    service_fault,
)
from repro.errors import JournalWriteError
from repro.service.jobs import JobSpec
from repro.service.registry import SessionRegistry
from repro.service.scheduler import JobScheduler
from repro.service.tenants import TenantManager
from repro.telemetry.journal import JournalWriter


def spec(tenant: str = "alpha", **overrides) -> JobSpec:
    fields = dict(
        tenant=tenant,
        profiles=("D1",),
        strategies=("sequential",),
        budget=40,
    )
    fields.update(overrides)
    return JobSpec(**fields)


def plan(tmp_path, *faults: ServiceFaultSpec) -> ServiceFaultPlan:
    return ServiceFaultPlan(
        faults=tuple(faults), ledger_dir=str(tmp_path / "fault-ledger")
    )


@pytest.fixture(autouse=True)
def _clear_faults():
    yield
    install_service_faults(None)


class TestServiceFaultPlan:
    def test_json_roundtrip(self, tmp_path):
        original = plan(
            tmp_path,
            ServiceFaultSpec(kind="kill", site="registry.manifest.mid"),
            ServiceFaultSpec(kind="journal_io", site="journal.emit", times=3),
        )
        assert ServiceFaultPlan.from_json(original.to_json()) == original

    def test_unknown_kind_and_site_rejected(self):
        with pytest.raises(ValueError):
            ServiceFaultSpec(kind="meteor", site="journal.emit")
        with pytest.raises(ValueError):
            ServiceFaultSpec(kind="kill", site="nowhere")
        with pytest.raises(ValueError):
            ServiceFaultSpec(kind="kill", site="journal.emit", times=0)

    def test_occurrences_bounded_across_plan_instances(self, tmp_path):
        """The ledger, not the object, counts: restarts share the cap."""
        first = plan(
            tmp_path,
            ServiceFaultSpec(
                kind="registry_io", site="registry.intent", times=2
            ),
        )
        with pytest.raises(OSError):
            first.fire("registry.intent")
        # A "restarted process": same ledger dir, fresh plan object.
        second = ServiceFaultPlan.from_json(first.to_json())
        with pytest.raises(OSError):
            second.fire("registry.intent")
        assert second.fire("registry.intent") is None  # exhausted

    def test_registry_io_raises_enospc(self, tmp_path):
        armed = plan(
            tmp_path,
            ServiceFaultSpec(kind="registry_io", site="registry.intent"),
        )
        with pytest.raises(OSError) as excinfo:
            armed.fire("registry.intent")
        assert excinfo.value.errno == errno.ENOSPC

    def test_sites_without_faults_are_no_ops(self, tmp_path):
        armed = plan(
            tmp_path,
            ServiceFaultSpec(kind="registry_io", site="registry.intent"),
        )
        for site in SERVICE_FAULT_SITES:
            if site != "registry.intent":
                assert armed.fire(site) is None

    def test_hook_is_inert_without_installed_plan(self):
        for site in SERVICE_FAULT_SITES:
            assert service_fault(site) is None


class TestTypedJournalFailures:
    def test_journal_emit_raises_typed_error(self, tmp_path):
        install_service_faults(
            plan(
                tmp_path,
                ServiceFaultSpec(kind="journal_io", site="journal.emit"),
            )
        )
        writer = JournalWriter(
            tmp_path / "run" / "events.jsonl", run_id="r1", worker="t"
        )
        with pytest.raises(JournalWriteError) as excinfo:
            writer.emit("run_start")
        assert excinfo.value.errno == errno.ENOSPC
        # Exhausted after one occurrence: the journal works again.
        writer.emit("run_start")
        writer.close()

    def test_submit_failure_holds_no_quota(self, tmp_path):
        """ENOSPC on the admission write: error out, charge nothing."""
        install_service_faults(
            plan(
                tmp_path,
                ServiceFaultSpec(kind="registry_io", site="registry.intent"),
            )
        )
        registry = SessionRegistry(tmp_path)
        scheduler = JobScheduler(
            registry, TenantManager(tmp_path), pool_workers=1
        )
        with pytest.raises(JournalWriteError):
            scheduler.submit(spec(budget=100))
        assert registry.jobs() == []
        assert registry.packets_committed("alpha") == 0
        # The disk "recovered" (fault exhausted): the retry is admitted.
        scheduler.submit(spec(budget=100))
        assert registry.packets_committed("alpha") == 100

    def test_journal_enospc_aborts_job_with_clean_reason(self, tmp_path):
        """A job whose run journal hits ENOSPC: aborted(resumable),
        failure reason names the write, no traceback leaks."""
        install_service_faults(
            plan(
                tmp_path,
                ServiceFaultSpec(kind="journal_io", site="journal.emit"),
            )
        )
        registry = SessionRegistry(tmp_path)
        scheduler = JobScheduler(
            registry, TenantManager(tmp_path), pool_workers=1
        )
        record = scheduler.submit(spec(budget=20))
        scheduler.start()
        try:
            final = scheduler.wait(record.job_id, timeout=120)
        finally:
            scheduler.stop()
        assert final.status == "aborted"
        assert final.error is not None
        assert "durability write failed" in final.error
        assert "journal write failed" in final.error
        assert "Traceback" not in final.error
        assert final.resumable  # run_id was published before dispatch

        # And the resume — fault exhausted — finishes the job.
        fresh = JobScheduler(registry, TenantManager(tmp_path), pool_workers=1)
        resumed = fresh.resume(record.job_id, "alpha")
        fresh.start()
        try:
            done = fresh.wait(resumed.job_id, timeout=120)
        finally:
            fresh.stop()
        assert done.status == "finished", done.error
