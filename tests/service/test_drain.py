"""Graceful-drain tests: SIGTERM/SIGINT against a real ``repro serve``.

The drain contract: the signalled server stops admitting, lets the
in-flight shard reach a checkpoint, flips the running job's manifest to
``aborted`` (resumable) and the run manifest to ``aborted``, and exits
0. A restart with ``--auto-resume`` finishes the interrupted chain.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.core.runtime import CHECKPOINTS_DIRNAME
from repro.service import ServiceClient

#: Long enough to be signalled mid-run; batch=1 keeps shard (and thus
#: checkpoint) boundaries frequent so the drain is quick.
LONG_SPEC = {
    "profiles": ["D1", "D2", "D3"],
    "strategies": ["sequential", "targeted"],
    "budget": 40000,
    "seed": 11,
    "armed": False,  # disarmed: campaigns run their full budget (~8s)
    "batch": 1,
}


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def start_server(
    data_dir: Path, port: int, *extra_args: str, env: dict | None = None
) -> subprocess.Popen:
    src = str(Path(__file__).resolve().parents[2] / "src")
    merged_env = dict(os.environ if env is None else env)
    merged_env["PYTHONPATH"] = os.pathsep.join(
        part for part in (src, merged_env.get("PYTHONPATH")) if part
    )
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--data-dir",
            str(data_dir),
            "--port",
            str(port),
            "--workers",
            "1",
            *extra_args,
        ],
        env=merged_env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
    )


def wait_healthy(client: ServiceClient, timeout: float = 30.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            client.health()
            return
        except OSError:
            time.sleep(0.05)
    raise TimeoutError("server never became healthy")


def wait_until_mid_run(
    client: ServiceClient, job_id: str, timeout: float = 60.0
) -> dict:
    """Block until the job is running with a recorded run id."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        record = client.job(job_id)
        if record["status"] == "running" and record["run_id"]:
            return record
        if record["status"] not in ("queued", "running"):
            return record
        time.sleep(0.05)
    raise TimeoutError(f"job {job_id} never started running")


def job_manifest(data_dir: Path, job_id: str) -> dict:
    return json.loads(
        (data_dir / "jobs" / f"{job_id}.json").read_text(encoding="utf-8")
    )


def run_dir_of(data_dir: Path, tenant: str, run_id: str) -> Path:
    return data_dir / "tenants" / tenant / "runs" / run_id


@pytest.mark.parametrize(
    "signum", [signal.SIGTERM, signal.SIGINT], ids=["SIGTERM", "SIGINT"]
)
def test_signal_drains_to_resumable_checkpoints(tmp_path, signum):
    """Signal mid-job: exit 0, job aborted(resumable), checkpoints on
    disk, run manifest aborted, drain named as the failure reason."""
    port = free_port()
    server = start_server(tmp_path, port)
    client = ServiceClient(f"http://127.0.0.1:{port}", tenant="alpha")
    try:
        wait_healthy(client)
        job = client.submit(LONG_SPEC)
        record = wait_until_mid_run(client, job["job_id"])
        if record["status"] != "running":
            pytest.skip(f"job went {record['status']} before the signal")
        # Give the first shard a moment to land a checkpoint.
        run_dir = run_dir_of(tmp_path, "alpha", record["run_id"])
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            if list((run_dir / CHECKPOINTS_DIRNAME).glob("*.bin")):
                break
            time.sleep(0.05)

        server.send_signal(signum)
        assert server.wait(timeout=90) == 0, server.stdout.read().decode()
    finally:
        if server.poll() is None:
            server.kill()
            server.wait(timeout=30)

    manifest = job_manifest(tmp_path, job["job_id"])
    if manifest["status"] == "finished":
        pytest.skip("job finished before the signal landed")
    assert manifest["status"] == "aborted"
    assert manifest["run_id"]
    assert "drain" in manifest["error"]
    assert list((run_dir / CHECKPOINTS_DIRNAME).glob("*.bin")), (
        "drain left no resumable checkpoints"
    )
    run_manifest = json.loads(
        (run_dir / "run.json").read_text(encoding="utf-8")
    )
    assert run_manifest["status"] == "aborted"


def test_drained_job_resumes_on_restart_with_auto_resume(tmp_path):
    """SIGTERM mid-job, then restart --auto-resume: the chain finishes
    without any operator action and reports all six campaigns."""
    port = free_port()
    server = start_server(tmp_path, port)
    client = ServiceClient(f"http://127.0.0.1:{port}", tenant="alpha")
    try:
        wait_healthy(client)
        job = client.submit(LONG_SPEC)
        record = wait_until_mid_run(client, job["job_id"])
        if record["status"] != "running":
            pytest.skip(f"job went {record['status']} before the signal")
        server.send_signal(signal.SIGTERM)
        assert server.wait(timeout=90) == 0
    finally:
        if server.poll() is None:
            server.kill()
            server.wait(timeout=30)
    if job_manifest(tmp_path, job["job_id"])["status"] == "finished":
        pytest.skip("job finished before the signal landed")

    port = free_port()
    server = start_server(tmp_path, port, "--auto-resume")
    client = ServiceClient(f"http://127.0.0.1:{port}", tenant="alpha")
    try:
        wait_healthy(client)
        deadline = time.monotonic() + 300
        resumed = None
        while time.monotonic() < deadline:
            jobs = client.jobs()
            resumed = next(
                (
                    record
                    for record in jobs
                    if record["resume_of"] == job["job_id"]
                ),
                None,
            )
            if resumed is not None and resumed["status"] not in (
                "queued",
                "running",
            ):
                break
            time.sleep(0.2)
        assert resumed is not None, "auto-resume never fired after restart"
        assert resumed["status"] == "finished", resumed["error"]
        assert resumed["campaigns"] == 6
        assert resumed["auto_resume_attempts"] == 1
        # The finished continuation serves the merged report.
        report = client.report(resumed["job_id"])
        assert len(report["campaigns"]) == 6
    finally:
        client.shutdown()
        if server.poll() is None:
            try:
                server.wait(timeout=60)
            except subprocess.TimeoutExpired:
                server.kill()
                server.wait(timeout=30)
