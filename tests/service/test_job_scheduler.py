"""Scheduler tests: quotas under concurrency, isolation, cancel/resume.

The satellite contract: N tenants submitting M jobs each onto one
2-worker pool must see quotas enforced *exactly* (no admission race),
corpus writes must never cross tenant namespaces, and a cancelled job
must leave checkpoints a resume can finish from.
"""

from __future__ import annotations

import threading

import pytest

from repro.service.jobs import (
    JobSpec,
    JobStateError,
    QuotaExceededError,
)
from repro.service.registry import SessionRegistry
from repro.service.scheduler import JobScheduler
from repro.service.tenants import TenantManager, TenantQuota


def make_scheduler(
    tmp_path,
    pool_workers: int = 2,
    quota: TenantQuota | None = None,
) -> JobScheduler:
    registry = SessionRegistry(tmp_path)
    tenants = TenantManager(tmp_path, default_quota=quota)
    return JobScheduler(registry, tenants, pool_workers=pool_workers)


def spec(tenant: str = "alpha", **overrides) -> JobSpec:
    fields = dict(
        tenant=tenant,
        profiles=("D1",),
        strategies=("sequential",),
        budget=40,
    )
    fields.update(overrides)
    return JobSpec(**fields)


class TestQuotaExactness:
    def test_concurrent_submissions_admit_exactly_the_quota(self, tmp_path):
        """3 tenants x 8 racing submits, limit 3: exactly 3 admitted each.

        The scheduler is deliberately not started — admission must be
        exact under the submit lock alone, with no help from jobs
        draining out of the queue.
        """
        scheduler = make_scheduler(
            tmp_path, quota=TenantQuota(max_active_jobs=3)
        )
        tenants = ("alpha", "beta", "gamma")
        outcomes: dict[str, list[str]] = {tenant: [] for tenant in tenants}
        barrier = threading.Barrier(len(tenants) * 8)

        def submit(tenant: str) -> None:
            barrier.wait()
            try:
                scheduler.submit(spec(tenant))
                outcomes[tenant].append("admitted")
            except QuotaExceededError:
                outcomes[tenant].append("rejected")

        threads = [
            threading.Thread(target=submit, args=(tenant,))
            for tenant in tenants
            for _ in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for tenant in tenants:
            assert outcomes[tenant].count("admitted") == 3
            assert outcomes[tenant].count("rejected") == 5
            assert scheduler.registry.active_count(tenant) == 3

    def test_packet_budget_enforced_exactly(self, tmp_path):
        scheduler = make_scheduler(
            tmp_path,
            quota=TenantQuota(max_active_jobs=100, packet_budget=200),
        )
        scheduler.submit(spec(budget=100))  # 100 committed
        with pytest.raises(QuotaExceededError):
            scheduler.submit(spec(budget=150))  # 100 + 150 > 200
        scheduler.submit(spec(budget=100))  # exactly 200: admitted
        with pytest.raises(QuotaExceededError):
            scheduler.submit(spec(budget=1))

    def test_quotas_are_per_tenant(self, tmp_path):
        scheduler = make_scheduler(
            tmp_path, quota=TenantQuota(max_active_jobs=1)
        )
        scheduler.submit(spec("alpha"))
        with pytest.raises(QuotaExceededError):
            scheduler.submit(spec("alpha"))
        scheduler.submit(spec("beta"))  # other tenants unaffected

    def test_validation_happens_before_admission(self, tmp_path):
        scheduler = make_scheduler(tmp_path)
        from repro.service.jobs import JobValidationError

        with pytest.raises(JobValidationError):
            scheduler.submit(spec(profiles=("D99",)))
        assert scheduler.registry.jobs() == []


class TestSchedulingOrder:
    def test_fifo_within_priority_across_tenants(self, tmp_path):
        """Jobs drain priority-first, submission-order within a band."""
        scheduler = make_scheduler(
            tmp_path, quota=TenantQuota(max_active_jobs=10)
        )
        low_a = scheduler.submit(spec("alpha", priority=7))
        urgent = scheduler.submit(spec("beta", priority=1))
        low_b = scheduler.submit(spec("alpha", priority=7))

        order = []
        original = scheduler._execute

        def tracking_execute(record):
            order.append(record.job_id)
            original(record)

        scheduler._execute = tracking_execute
        scheduler.start()
        try:
            for record in (low_a, urgent, low_b):
                scheduler.wait(record.job_id, timeout=120)
        finally:
            scheduler.stop()
        assert order == [urgent.job_id, low_a.job_id, low_b.job_id]


class TestNamespaceIsolation:
    def test_corpus_writes_stay_in_the_submitting_tenants_namespace(
        self, tmp_path
    ):
        """Overlapping corpus-writing jobs never cross namespaces."""
        scheduler = make_scheduler(
            tmp_path, quota=TenantQuota(max_active_jobs=10)
        )
        jobs = []
        scheduler.start()
        try:
            for _ in range(2):
                jobs.append(
                    scheduler.submit(
                        spec(
                            "alpha",
                            profiles=("D1",),
                            budget=200,
                            use_corpus=True,
                        )
                    )
                )
                jobs.append(
                    scheduler.submit(
                        spec(
                            "beta",
                            profiles=("D2",),
                            budget=200,
                            use_corpus=True,
                        )
                    )
                )
            for record in jobs:
                final = scheduler.wait(record.job_id, timeout=240)
                assert final.status == "finished", final.error
        finally:
            scheduler.stop()

        alpha = scheduler.tenants.open_corpus("alpha")
        beta = scheduler.tenants.open_corpus("beta")
        try:
            alpha_entries = alpha.entries()
            beta_entries = beta.entries()
            assert alpha_entries, "alpha's jobs recorded no corpus entries"
            assert beta_entries, "beta's jobs recorded no corpus entries"
            assert {entry.device_id for entry in alpha_entries} == {"D1"}
            assert {entry.device_id for entry in beta_entries} == {"D2"}
            assert not (
                {entry.entry_id for entry in alpha_entries}
                & {entry.entry_id for entry in beta_entries}
            )
        finally:
            alpha.close()
            beta.close()


class TestCancelAndResume:
    def test_cancel_queued_job_is_immediate(self, tmp_path):
        scheduler = make_scheduler(tmp_path)
        record = scheduler.submit(spec())
        cancelled = scheduler.cancel(record.job_id, "alpha")
        assert cancelled.status == "cancelled"
        # Not resumable: it never started, there is no run to resume.
        with pytest.raises(JobStateError):
            scheduler.resume(record.job_id, "alpha")

    def test_cancel_terminal_job_is_a_state_error(self, tmp_path):
        scheduler = make_scheduler(tmp_path)
        record = scheduler.submit(spec(budget=20))
        scheduler.start()
        try:
            scheduler.wait(record.job_id, timeout=120)
        finally:
            scheduler.stop()
        with pytest.raises(JobStateError):
            scheduler.cancel(record.job_id, "alpha")

    def test_cancelled_running_job_leaves_resumable_checkpoints(
        self, tmp_path
    ):
        """Cancel mid-run: checkpoints on disk, resume finishes the job."""
        from repro.core.runtime import CHECKPOINTS_DIRNAME

        scheduler = make_scheduler(tmp_path)
        record = scheduler.submit(
            spec(
                profiles=("D1", "D2", "D3"),
                strategies=("sequential", "targeted"),
                budget=1200,
                batch=1,
            )
        )
        scheduler.start()
        try:
            # Wait until at least one checkpoint exists, then cancel.
            import time

            run_dir = None
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                current = scheduler.registry.get(record.job_id)
                if current.run_id is not None:
                    run_dir = (
                        scheduler.tenants.runs_dir("alpha") / current.run_id
                    )
                    if list(
                        (run_dir / CHECKPOINTS_DIRNAME).glob("*.bin")
                    ):
                        break
                if not current.active:
                    break  # finished before we could cancel
                time.sleep(0.01)
            current = scheduler.registry.get(record.job_id)
            if current.status == "running":
                scheduler.cancel(record.job_id, "alpha")
            final = scheduler.wait(record.job_id, timeout=120)
            if final.status == "finished":
                pytest.skip("job finished before cancel landed")
            assert final.status == "cancelled"
            assert final.resumable
            assert list((run_dir / CHECKPOINTS_DIRNAME).glob("*.bin"))

            resumed = scheduler.resume(record.job_id, "alpha")
            assert resumed.resume_of == record.job_id
            assert resumed.run_id == final.run_id
            done = scheduler.wait(resumed.job_id, timeout=240)
            assert done.status == "finished", done.error
            assert done.campaigns == 6
        finally:
            scheduler.stop()

    def test_resume_requires_owning_tenant(self, tmp_path):
        from repro.service.jobs import UnknownJobError

        scheduler = make_scheduler(tmp_path)
        record = scheduler.submit(spec())
        scheduler.registry.update(
            record.job_id, status="aborted", run_id="r1"
        )
        with pytest.raises(UnknownJobError):
            scheduler.resume(record.job_id, "mallory")
        with pytest.raises(UnknownJobError):
            scheduler.cancel(record.job_id, "mallory")


class TestRecovery:
    def test_restart_requeues_queued_and_aborts_running(self, tmp_path):
        registry = SessionRegistry(tmp_path)
        tenants = TenantManager(tmp_path)
        scheduler = JobScheduler(registry, tenants, pool_workers=1)
        queued = scheduler.submit(spec(budget=20))
        interrupted = scheduler.submit(spec(budget=20))
        registry.update(
            interrupted.job_id, status="running", run_id="r-dead"
        )

        fresh_registry = SessionRegistry(tmp_path)
        fresh = JobScheduler(
            fresh_registry, TenantManager(tmp_path), pool_workers=1
        )
        fresh.start()
        try:
            final = fresh.wait(queued.job_id, timeout=120)
            assert final.status == "finished", final.error
        finally:
            fresh.stop()
        aborted = fresh_registry.get(interrupted.job_id)
        assert aborted.status == "aborted"
        assert aborted.resumable
