"""Unit tests for the job model and the session registry."""

from __future__ import annotations

import json

import pytest

from repro.service.jobs import (
    JobRecord,
    JobSpec,
    JobValidationError,
    new_job_id,
)
from repro.service.registry import SessionRegistry


def spec(**overrides) -> JobSpec:
    fields = dict(tenant="alpha", profiles=("D1",))
    fields.update(overrides)
    return JobSpec(**fields)


class TestJobSpec:
    def test_valid_spec_passes(self):
        spec(
            profiles=("D1", "D2"),
            strategies=("sequential", "targeted"),
            targets=("l2cap", "rfcomm"),
        ).validate()

    @pytest.mark.parametrize(
        "overrides",
        [
            {"tenant": "../escape"},
            {"tenant": ""},
            {"profiles": ()},
            {"profiles": ("D99",)},
            {"strategies": ("warp-speed",)},
            {"targets": ("telnet",)},
            {"budget": 0},
            {"priority": 10},
            {"priority": -1},
            {"batch": 0},
            {"target_state": "IMAGINED"},
        ],
    )
    def test_bad_specs_rejected(self, overrides):
        with pytest.raises(JobValidationError):
            spec(**overrides).validate()

    def test_matrix_arithmetic(self):
        matrix = spec(
            profiles=("D1", "D2", "D3"),
            strategies=("sequential", "targeted"),
            targets=("l2cap",),
            budget=500,
        )
        assert matrix.campaigns == 6
        assert matrix.packets_requested == 3000

    def test_round_trip(self):
        original = spec(
            profiles=("D1", "D2"), budget=123, priority=2, batch=3
        )
        assert JobSpec.from_dict(original.to_dict()) == original

    def test_from_dict_rejects_garbage(self):
        with pytest.raises(JobValidationError):
            JobSpec.from_dict({"profiles": ["D1"]})  # no tenant
        with pytest.raises(JobValidationError):
            JobSpec.from_dict({"tenant": "a", "profiles": ["D1"], "budget": "lots"})


class TestJobRecord:
    def test_round_trip_preserves_everything(self):
        record = JobRecord(
            job_id=new_job_id(),
            spec=spec(),
            status="finished",
            created=100.0,
            started=101.0,
            finished=105.0,
            run_id="20260101-000000-abc123",
            campaigns=4,
            packets=400,
            findings=2,
            merged_state_count=9,
        )
        clone = JobRecord.from_dict(
            json.loads(json.dumps(record.to_dict()))
        )
        assert clone == record

    def test_resumable_needs_terminal_failure_and_run(self):
        record = JobRecord(job_id="job-x", spec=spec())
        assert not record.resumable  # queued
        record.status = "cancelled"
        assert not record.resumable  # no run recorded
        record.run_id = "r1"
        assert record.resumable
        record.status = "finished"
        assert not record.resumable


class TestSessionRegistry:
    def test_create_get_update_listing(self, tmp_path):
        registry = SessionRegistry(tmp_path)
        a = registry.create(spec())
        b = registry.create(spec(tenant="beta"))
        assert registry.get(a.job_id).status == "queued"
        registry.update(a.job_id, status="running", started=1.0)
        assert registry.get(a.job_id).status == "running"
        assert [r.job_id for r in registry.jobs("alpha")] == [a.job_id]
        assert {r.job_id for r in registry.jobs()} == {a.job_id, b.job_id}

    def test_recover_marks_running_as_aborted(self, tmp_path):
        registry = SessionRegistry(tmp_path)
        running = registry.create(spec())
        registry.update(running.job_id, status="running", run_id="r1")
        queued = registry.create(spec())
        done = registry.create(spec())
        registry.update(done.job_id, status="finished")

        fresh = SessionRegistry(tmp_path)
        requeue = fresh.recover()
        assert [r.job_id for r in requeue] == [queued.job_id]
        recovered = fresh.get(running.job_id)
        assert recovered.status == "aborted"
        assert "restarted" in recovered.error
        assert recovered.resumable
        assert fresh.get(done.job_id).status == "finished"

    def test_quota_inputs(self, tmp_path):
        registry = SessionRegistry(tmp_path)
        first = registry.create(spec(budget=100))
        registry.create(spec(budget=50))
        registry.create(spec(tenant="beta", budget=10))
        assert registry.active_count("alpha") == 2
        assert registry.packets_committed("alpha") == 150
        # Resumes are charged at original admission, not again.
        resume = registry.create(spec(budget=100), resume_of=first.job_id)
        assert registry.packets_committed("alpha") == 150
        assert resume.resume_of == first.job_id
        registry.update(first.job_id, status="cancelled")
        assert registry.active_count("alpha") == 2  # resume + second

    def test_report_round_trips_byte_exact(self, tmp_path):
        registry = SessionRegistry(tmp_path)
        record = registry.create(spec())
        payload = '{"fleet": 1,\n "campaigns": []}'
        registry.save_report(record.job_id, payload)
        assert registry.report_text(record.job_id) == payload
        assert registry.report_text("job-nope") is None

    def test_report_files_not_confused_with_manifests(self, tmp_path):
        registry = SessionRegistry(tmp_path)
        record = registry.create(spec())
        registry.save_report(record.job_id, "{}")
        fresh = SessionRegistry(tmp_path)
        fresh.recover()
        assert fresh.get(record.job_id).job_id == record.job_id
        assert len(fresh.jobs()) == 1
