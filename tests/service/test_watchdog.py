"""Watchdog tests: dispatcher resurrection, wedge aborts, capped resumes.

The self-healing contract: a dead dispatcher is restarted (its orphaned
job aborted resumable), a running job with no observable progress past
the deadline is aborted resumable, and automatic resumes retry a
failing chain a bounded number of times — never forever.
"""

from __future__ import annotations

import time

import pytest

from repro.core.faults import (
    ServiceFaultPlan,
    ServiceFaultSpec,
    install_service_faults,
)
from repro.service.jobs import JobSpec
from repro.service.registry import SessionRegistry
from repro.service.scheduler import JobScheduler
from repro.service.tenants import TenantManager
from repro.service.watchdog import Watchdog


def spec(tenant: str = "alpha", **overrides) -> JobSpec:
    fields = dict(
        tenant=tenant,
        profiles=("D1",),
        strategies=("sequential",),
        budget=40,
    )
    fields.update(overrides)
    return JobSpec(**fields)


def make_scheduler(tmp_path, **kwargs) -> tuple[JobScheduler, TenantManager]:
    registry = SessionRegistry(tmp_path)
    tenants = TenantManager(tmp_path)
    return JobScheduler(registry, tenants, pool_workers=1, **kwargs), tenants


@pytest.fixture(autouse=True)
def _clear_faults():
    yield
    install_service_faults(None)


class TestDispatcherResurrection:
    def test_watchdog_restarts_a_crashed_dispatcher(self, tmp_path):
        """Injected dispatcher crash; the watchdog brings it back and the
        queued job still completes."""
        install_service_faults(
            ServiceFaultPlan(
                faults=(
                    ServiceFaultSpec(
                        kind="dispatcher_crash", site="scheduler.dispatch"
                    ),
                ),
                ledger_dir=str(tmp_path / "ledger"),
            )
        )
        scheduler, tenants = make_scheduler(tmp_path)
        watchdog = Watchdog(scheduler, tenants, interval=0.05)
        record = scheduler.submit(spec(budget=20))
        scheduler.start()  # first loop iteration dies on the fault
        try:
            deadline = time.monotonic() + 10
            while scheduler._thread.is_alive():
                if time.monotonic() > deadline:
                    pytest.fail("injected dispatcher crash never landed")
                time.sleep(0.01)
            assert watchdog.tick() is None  # restarts; fault is exhausted
            final = scheduler.wait(record.job_id, timeout=120)
            assert final.status == "finished", final.error
        finally:
            scheduler.stop()
        metrics = scheduler.metrics.to_prometheus()
        assert "service_watchdog_restarts 1" in metrics

    def test_orphaned_running_job_is_aborted_resumable(self, tmp_path):
        """Dispatcher died mid-job: the orphan flips aborted(resumable)."""
        scheduler, tenants = make_scheduler(tmp_path)
        record = scheduler.submit(spec())
        scheduler.registry.update(
            record.job_id, status="running", run_id="r-orphan"
        )
        # A scheduler whose dispatcher died while this job was current.
        scheduler._started = True
        scheduler._thread = None
        scheduler._current_job = record.job_id
        assert scheduler.ensure_dispatcher_alive()
        final = scheduler.registry.get(record.job_id)
        assert final.status == "aborted"
        assert final.resumable
        assert "dispatcher died" in final.error
        scheduler.stop()

    def test_ensure_alive_is_a_no_op_on_a_healthy_dispatcher(self, tmp_path):
        scheduler, _ = make_scheduler(tmp_path)
        scheduler.start()
        try:
            assert not scheduler.ensure_dispatcher_alive()
        finally:
            scheduler.stop()
        # And after a clean stop, no resurrection either.
        assert not scheduler.ensure_dispatcher_alive()


class TestWedgeDetection:
    def test_wedged_job_is_aborted_after_deadline(self, tmp_path):
        """A running job whose run dir never changes gets the abort."""
        scheduler, tenants = make_scheduler(tmp_path)
        watchdog = Watchdog(
            scheduler, tenants, interval=0.05, wedge_deadline=0.05
        )
        record = scheduler.submit(spec())
        scheduler.registry.update(
            record.job_id, status="running", run_id="r-wedge"
        )
        (tenants.runs_dir("alpha") / "r-wedge").mkdir(
            parents=True, exist_ok=True
        )
        scheduler._current_job = record.job_id

        watchdog.tick()  # records the baseline signature
        assert not scheduler._abort_events[record.job_id].is_set()
        time.sleep(0.1)
        watchdog.tick()  # past the deadline with no progress
        assert scheduler._abort_events[record.job_id].is_set()
        assert scheduler._abort_reasons[record.job_id].startswith(
            "no journal progress"
        )

    def test_progress_resets_the_wedge_clock(self, tmp_path):
        scheduler, tenants = make_scheduler(tmp_path)
        watchdog = Watchdog(
            scheduler, tenants, interval=0.05, wedge_deadline=0.05
        )
        record = scheduler.submit(spec())
        scheduler.registry.update(
            record.job_id, status="running", run_id="r-live"
        )
        run_dir = tenants.runs_dir("alpha") / "r-live"
        run_dir.mkdir(parents=True, exist_ok=True)
        scheduler._current_job = record.job_id

        watchdog.tick()
        time.sleep(0.1)
        # The run advanced: new journal bytes perturb the signature.
        (run_dir / "events.jsonl").write_text(
            '{"event": "x"}\n', encoding="utf-8"
        )
        watchdog.tick()  # progress seen, clock resets
        assert not scheduler._abort_events[record.job_id].is_set()

    def test_watchdog_abort_lands_resumable_on_a_real_job(self, tmp_path):
        """The abort-reason plumbing end to end: watchdog-style abort of
        a genuinely running job ends aborted(resumable), not cancelled."""
        scheduler, _ = make_scheduler(tmp_path)
        record = scheduler.submit(
            spec(
                profiles=("D1", "D2", "D3"),
                strategies=("sequential", "targeted"),
                budget=1200,
                batch=1,
            )
        )
        scheduler.start()
        try:
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                current = scheduler.registry.get(record.job_id)
                if current.status == "running" and current.run_id:
                    break
                if not current.active:
                    break
                time.sleep(0.01)
            if scheduler.registry.get(record.job_id).status == "running":
                scheduler.abort_job(
                    record.job_id, "no journal progress for 1s"
                )
            final = scheduler.wait(record.job_id, timeout=120)
        finally:
            scheduler.stop()
        if final.status == "finished":
            pytest.skip("job finished before the watchdog abort landed")
        assert final.status == "aborted"
        assert final.resumable
        assert "watchdog" in final.error


class TestAutoResume:
    def test_startup_auto_resume_finishes_an_aborted_job(self, tmp_path):
        """Service restart with --auto-resume: the interrupted job's
        chain completes without any operator action."""
        scheduler, _ = make_scheduler(tmp_path)
        record = scheduler.submit(
            spec(
                profiles=("D1", "D2", "D3"),
                strategies=("sequential", "targeted"),
                budget=1200,
                batch=1,
            )
        )
        scheduler.start()
        try:
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                current = scheduler.registry.get(record.job_id)
                if (
                    current.status == "running" and current.run_id
                ) or not current.active:
                    break
                time.sleep(0.01)
        finally:
            scheduler.drain()  # running job lands aborted(resumable)
        interrupted = scheduler.registry.get(record.job_id)
        if interrupted.status != "aborted":
            pytest.skip("job finished before the drain landed")

        fresh = JobScheduler(
            SessionRegistry(tmp_path),
            TenantManager(tmp_path),
            pool_workers=1,
            auto_resume=True,
            auto_resume_backoff=0.01,
        )
        fresh.start()
        try:
            deadline = time.monotonic() + 240
            resumed = None
            while time.monotonic() < deadline:
                resumed = next(
                    (
                        job
                        for job in fresh.registry.jobs()
                        if job.resume_of == record.job_id
                    ),
                    None,
                )
                if resumed is not None and not resumed.active:
                    break
                time.sleep(0.05)
            assert resumed is not None, "auto-resume never fired"
            assert resumed.auto_resume_attempts == 1
            assert resumed.status == "finished", resumed.error
            assert resumed.campaigns == 6
        finally:
            fresh.stop()
        assert "service_recoveries_total" in fresh.metrics.to_prometheus()

    def test_auto_resume_attempts_are_capped(self, tmp_path):
        """A chain that keeps failing stops after max attempts."""
        scheduler, _ = make_scheduler(
            tmp_path,
            auto_resume=True,
            auto_resume_max_attempts=2,
            auto_resume_backoff=0.01,
        )

        def always_failing_execute(record):
            scheduler.registry.update(
                record.job_id, status="running", started=time.time()
            )
            scheduler.registry.update(
                record.job_id,
                status="aborted",
                run_id="r-fail",
                error="boom",
                finished=time.time(),
            )
            scheduler._queue_auto_resume(record.job_id)

        scheduler._execute = always_failing_execute
        scheduler.submit(spec())
        scheduler.start()
        try:
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                jobs = scheduler.registry.jobs()
                if (
                    len(jobs) >= 3
                    and all(job.status == "aborted" for job in jobs)
                    and not scheduler._pending_resumes
                ):
                    break
                time.sleep(0.05)
            time.sleep(0.3)  # would-be extra resumes get a chance to fire
            jobs = scheduler.registry.jobs()
        finally:
            scheduler.stop()
        # Original + exactly max_attempts resumes, then the chain stops.
        assert len(jobs) == 3
        assert [job.auto_resume_attempts for job in jobs] == [0, 1, 2]
        assert all(job.status == "aborted" for job in jobs)

    def test_user_cancelled_jobs_are_not_auto_resumed(self, tmp_path):
        """The operator said stop: restart must not resurrect it."""
        scheduler, _ = make_scheduler(tmp_path)
        record = scheduler.submit(spec())
        scheduler.registry.update(
            record.job_id,
            status="cancelled",
            run_id="r-cancelled",
            error="cancelled by request",
        )
        fresh = JobScheduler(
            SessionRegistry(tmp_path),
            TenantManager(tmp_path),
            pool_workers=1,
            auto_resume=True,
            auto_resume_backoff=0.01,
        )
        fresh.start()
        try:
            time.sleep(0.5)
            assert all(
                job.resume_of is None for job in fresh.registry.jobs()
            )
        finally:
            fresh.stop()
