"""Durable-state tests: WAL intents, idempotent submits, exact refunds.

The crash-anywhere contract at the registry level: a transition is
either durable-and-acknowledged or it never happened — a torn manifest
repairs from the intent, a stale intent replays idempotently, a
replayed submit or cancel changes nothing twice.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.core.faults import (
    ServiceFaultPlan,
    ServiceFaultSpec,
    install_service_faults,
)
from repro.service.jobs import (
    JobRecord,
    JobSpec,
    JobStateError,
    ServiceSaturatedError,
)
from repro.service.registry import SessionRegistry
from repro.service.scheduler import JobScheduler
from repro.service.tenants import TenantManager, TenantQuota


def spec(tenant: str = "alpha", **overrides) -> JobSpec:
    fields = dict(
        tenant=tenant,
        profiles=("D1",),
        strategies=("sequential",),
        budget=40,
    )
    fields.update(overrides)
    return JobSpec(**fields)


def make_scheduler(tmp_path, **kwargs) -> JobScheduler:
    registry = SessionRegistry(tmp_path)
    tenants = TenantManager(
        tmp_path, default_quota=kwargs.pop("quota", None)
    )
    return JobScheduler(registry, tenants, pool_workers=1, **kwargs)


@pytest.fixture(autouse=True)
def _clear_faults():
    yield
    install_service_faults(None)


class TestWriteAheadIntents:
    def test_pending_intent_replays_over_stale_manifest(self, tmp_path):
        """Intent written, manifest not: recovery applies the intent."""
        registry = SessionRegistry(tmp_path)
        record = registry.create(spec())
        # Simulate dying between intent write and manifest write: put a
        # newer state in the WAL only.
        record.status = "cancelled"
        record.error = "cancelled while queued"
        registry._intent_path(record.job_id).write_text(
            json.dumps(record.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

        fresh = SessionRegistry(tmp_path)
        fresh.recover()
        assert fresh.last_recovery["intents_replayed"] == 1
        assert fresh.get(record.job_id).status == "cancelled"
        assert not registry._intent_path(record.job_id).exists()

    def test_torn_manifest_repairs_from_intent(self, tmp_path):
        """A half-written manifest is rebuilt byte-exactly from the WAL."""
        registry = SessionRegistry(tmp_path)
        record = registry.create(spec())
        manifest = registry._manifest_path(record.job_id)
        good = manifest.read_text(encoding="utf-8")
        registry._intent_path(record.job_id).write_text(
            good, encoding="utf-8"
        )
        manifest.write_text(good[: len(good) // 3], encoding="utf-8")

        fresh = SessionRegistry(tmp_path)
        fresh.recover()
        assert manifest.read_text(encoding="utf-8") == good
        assert fresh.get(record.job_id).status == "queued"

    def test_torn_intent_is_discarded(self, tmp_path):
        """An intent torn mid-write was never durable: dropped cleanly."""
        registry = SessionRegistry(tmp_path)
        record = registry.create(spec())
        registry._intent_path(record.job_id).write_text(
            '{"job_id": "job-trunc', encoding="utf-8"
        )
        fresh = SessionRegistry(tmp_path)
        fresh.recover()
        assert fresh.last_recovery["intents_replayed"] == 0
        assert fresh.get(record.job_id).status == "queued"
        assert not registry._intent_path(record.job_id).exists()

    def test_injected_torn_manifest_write_recovers(self, tmp_path):
        """The torn_manifest fault tears real bytes; recovery repairs."""
        install_service_faults(
            ServiceFaultPlan(
                faults=(
                    ServiceFaultSpec(
                        kind="torn_manifest", site="registry.manifest.pre"
                    ),
                ),
                ledger_dir=str(tmp_path / "ledger"),
            )
        )
        registry = SessionRegistry(tmp_path)
        from repro.errors import JournalWriteError

        with pytest.raises(JournalWriteError):
            registry.create(spec())
        install_service_faults(None)
        # The manifest on disk is torn; the intent holds the record.
        fresh = SessionRegistry(tmp_path)
        fresh.recover()
        assert fresh.last_recovery["intents_replayed"] == 1
        (record,) = fresh.jobs()
        assert record.status == "queued"
        # The tenant's quota charge survived the crash exactly once.
        assert fresh.packets_committed("alpha") == record.spec.packets_requested


class TestIdempotentSubmit:
    def test_same_key_returns_original_without_new_charge(self, tmp_path):
        scheduler = make_scheduler(
            tmp_path, quota=TenantQuota(max_active_jobs=5, packet_budget=100)
        )
        first, created = scheduler.submit_idempotent(spec(budget=60), "k-1")
        assert created
        replay, replayed_created = scheduler.submit_idempotent(
            spec(budget=60), "k-1"
        )
        assert not replayed_created
        assert replay.job_id == first.job_id
        # One charge: 60 of 100 committed, a 40-packet job still fits.
        assert scheduler.registry.packets_committed("alpha") == 60
        scheduler.submit_idempotent(spec(budget=40), "k-2")

    def test_concurrent_same_key_admits_exactly_one_job(self, tmp_path):
        scheduler = make_scheduler(tmp_path)
        results: list[tuple[JobRecord, bool]] = []
        barrier = threading.Barrier(8)

        def submit() -> None:
            barrier.wait()
            results.append(scheduler.submit_idempotent(spec(), "race-key"))

        threads = [threading.Thread(target=submit) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len({record.job_id for record, _ in results}) == 1
        assert sum(1 for _, created in results if created) == 1
        assert len(scheduler.registry.jobs()) == 1

    def test_key_survives_restart(self, tmp_path):
        """The key rides in the manifest: replay works on a new process."""
        scheduler = make_scheduler(tmp_path)
        first, _ = scheduler.submit_idempotent(spec(), "persistent-key")

        fresh = make_scheduler(tmp_path)
        for record in fresh.registry.recover():
            pass
        replay, created = fresh.submit_idempotent(spec(), "persistent-key")
        assert not created
        assert replay.job_id == first.job_id

    def test_keys_are_scoped_per_tenant(self, tmp_path):
        scheduler = make_scheduler(tmp_path)
        alpha, _ = scheduler.submit_idempotent(spec("alpha"), "shared")
        beta, created = scheduler.submit_idempotent(spec("beta"), "shared")
        assert created
        assert beta.job_id != alpha.job_id


class TestQuotaRefund:
    def test_cancel_of_queued_job_refunds_exactly_once(self, tmp_path):
        scheduler = make_scheduler(
            tmp_path, quota=TenantQuota(max_active_jobs=5, packet_budget=100)
        )
        record = scheduler.submit(spec(budget=100))
        assert scheduler.registry.packets_committed("alpha") == 100
        cancelled = scheduler.cancel(record.job_id, "alpha")
        assert cancelled.quota_refunded
        assert scheduler.registry.packets_committed("alpha") == 0
        # The replayed cancel is a state error, not a second refund.
        with pytest.raises(JobStateError):
            scheduler.cancel(record.job_id, "alpha")
        assert scheduler.registry.packets_committed("alpha") == 0
        scheduler.submit(spec(budget=100))  # the budget is fully back

    def test_refund_survives_restart(self, tmp_path):
        """quota_refunded rides the manifest: accounting rebuilds right."""
        scheduler = make_scheduler(
            tmp_path, quota=TenantQuota(max_active_jobs=5, packet_budget=100)
        )
        record = scheduler.submit(spec(budget=100))
        scheduler.cancel(record.job_id, "alpha")

        fresh = make_scheduler(
            tmp_path, quota=TenantQuota(max_active_jobs=5, packet_budget=100)
        )
        for _ in fresh.registry.recover():
            pass
        assert fresh.registry.packets_committed("alpha") == 0
        with pytest.raises(JobStateError):
            fresh.cancel(record.job_id, "alpha")  # replay after restart
        fresh.submit(spec(budget=100))

    def test_concurrent_cancels_refund_once(self, tmp_path):
        """Regression: N racing cancels of one queued job, one refund."""
        scheduler = make_scheduler(
            tmp_path, quota=TenantQuota(max_active_jobs=5, packet_budget=100)
        )
        record = scheduler.submit(spec(budget=100))
        outcomes: list[str] = []
        barrier = threading.Barrier(6)

        def cancel() -> None:
            barrier.wait()
            try:
                scheduler.cancel(record.job_id, "alpha")
                outcomes.append("cancelled")
            except JobStateError:
                outcomes.append("already")

        threads = [threading.Thread(target=cancel) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert outcomes.count("cancelled") == 1
        assert scheduler.registry.packets_committed("alpha") == 0


class TestBoundedQueue:
    def test_full_queue_rejects_with_saturation(self, tmp_path):
        scheduler = make_scheduler(
            tmp_path,
            quota=TenantQuota(max_active_jobs=50),
            queue_depth=2,
        )
        admitted, _ = scheduler.submit_idempotent(spec(), "first")
        scheduler.submit(spec())
        with pytest.raises(ServiceSaturatedError) as excinfo:
            scheduler.submit(spec())
        assert excinfo.value.retry_after >= 1.0
        # A replay of an already-admitted key answers even when full:
        # the job exists, nothing new is being asked for.
        replay, created = scheduler.submit_idempotent(spec(), "first")
        assert not created
        assert replay.job_id == admitted.job_id

    def test_draining_rejects_new_submissions(self, tmp_path):
        scheduler = make_scheduler(tmp_path)
        scheduler.begin_drain()
        with pytest.raises(ServiceSaturatedError):
            scheduler.submit(spec())
