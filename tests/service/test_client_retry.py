"""Client retry discipline: backoff, jitter, and replay safety.

The contract replacing the old fixed 50 ms poll: ``wait()`` backs off
exponentially to a cap and rides out dropped connections; requests that
are safe to replay (GETs, keyed submits, cancels) retry on connection
errors and 503s honouring ``Retry-After``; a submit without an
``Idempotency-Key`` and a resume never retry — the client cannot know
whether the lost response admitted a job.
"""

from __future__ import annotations

import pytest

from repro.service.client import ServiceClient, ServiceError


@pytest.fixture()
def client() -> ServiceClient:
    return ServiceClient(
        "http://127.0.0.1:1", tenant="alpha", retries=3, backoff=0.05
    )


def install_responses(monkeypatch, client, script):
    """Replace the wire with a scripted sequence of outcomes.

    Each entry is either an exception instance (the connection dropped)
    or a ``(status, body_bytes, headers)`` tuple. Returns the call log.
    """
    calls = []

    def fake_once(method, path, payload, headers):
        calls.append((method, path, headers))
        outcome = script[min(len(calls) - 1, len(script) - 1)]
        if isinstance(outcome, Exception):
            raise outcome
        return outcome

    monkeypatch.setattr(client, "_once", fake_once)
    monkeypatch.setattr(
        client, "_sleep_before_retry", lambda attempt, floor=0.0: None
    )
    return calls


class TestConnectionRetry:
    def test_retryable_request_survives_dropped_connections(
        self, monkeypatch, client
    ):
        calls = install_responses(
            monkeypatch,
            client,
            [
                ConnectionResetError("boom"),
                ConnectionRefusedError("still booting"),
                (200, b'{"jobs": []}', {}),
            ],
        )
        assert client.jobs() == []
        assert len(calls) == 3

    def test_retries_are_bounded(self, monkeypatch, client):
        calls = install_responses(
            monkeypatch, client, [ConnectionResetError("down for good")]
        )
        with pytest.raises(ConnectionResetError):
            client.jobs()
        assert len(calls) == client.retries + 1

    def test_keyed_submit_retries(self, monkeypatch, client):
        record = b'{"job_id": "j1", "status": "queued"}'
        calls = install_responses(
            monkeypatch,
            client,
            [ConnectionResetError("mid-restart"), (200, record, {})],
        )
        result = client.submit({"profiles": ["D1"]}, idempotency_key="k1")
        assert result["job_id"] == "j1"
        assert len(calls) == 2
        assert all(
            headers["Idempotency-Key"] == "k1" for _, _, headers in calls
        )

    def test_unkeyed_submit_never_retries(self, monkeypatch, client):
        """No key, no dedup on the server: a replay could double-admit."""
        calls = install_responses(
            monkeypatch, client, [ConnectionResetError("ambiguous loss")]
        )
        with pytest.raises(ConnectionResetError):
            client.submit({"profiles": ["D1"]})
        assert len(calls) == 1

    def test_resume_never_retries(self, monkeypatch, client):
        """Each resume admits a new continuation job — not replay-safe."""
        calls = install_responses(
            monkeypatch, client, [ConnectionResetError("ambiguous loss")]
        )
        with pytest.raises(ConnectionResetError):
            client.resume("j1")
        assert len(calls) == 1


class TestSaturationRetry:
    def test_503_retried_honouring_retry_after(self, monkeypatch, client):
        floors = []
        calls = []

        def fake_once(method, path, payload, headers):
            calls.append(path)
            if len(calls) == 1:
                return (
                    503,
                    b'{"error": "queue full"}',
                    {"retry-after": "1.5"},
                )
            return 200, b'{"job_id": "j1"}', {}

        monkeypatch.setattr(client, "_once", fake_once)
        monkeypatch.setattr(
            client,
            "_sleep_before_retry",
            lambda attempt, floor=0.0: floors.append(floor),
        )
        result = client.submit({"profiles": ["D1"]}, idempotency_key="k1")
        assert result == {"job_id": "j1"}
        assert floors == [1.5]  # the server's Retry-After is the floor

    def test_retry_after_floor_capped(self, monkeypatch, client):
        """A pathological Retry-After cannot stall the client."""
        floors = []
        install_responses(
            monkeypatch,
            client,
            [
                (503, b'{"error": "full"}', {"retry-after": "3600"}),
                (200, b'{"jobs": []}', {}),
            ],
        )
        monkeypatch.setattr(
            client,
            "_sleep_before_retry",
            lambda attempt, floor=0.0: floors.append(floor),
        )
        assert client.jobs() == []
        assert floors == [client.backoff_cap]

    def test_503_not_retried_without_replay_safety(self, monkeypatch, client):
        calls = install_responses(
            monkeypatch,
            client,
            [(503, b'{"error": "queue full"}', {"retry-after": "1"})],
        )
        with pytest.raises(ServiceError) as excinfo:
            client.submit({"profiles": ["D1"]})
        assert excinfo.value.status == 503
        assert len(calls) == 1

    def test_exhausted_retries_surface_the_503(self, monkeypatch, client):
        calls = install_responses(
            monkeypatch,
            client,
            [(503, b'{"error": "queue full"}', {"retry-after": "0"})],
        )
        with pytest.raises(ServiceError) as excinfo:
            client.jobs()
        assert excinfo.value.status == 503
        assert len(calls) == client.retries + 1


class TestBackoffShape:
    def test_sleep_is_capped_exponential(self, monkeypatch, client):
        """The jitter ceiling doubles per attempt up to backoff_cap."""
        sleeps = []
        monkeypatch.setattr(
            "repro.service.client.time.sleep", sleeps.append
        )
        # Full jitter: uniform(0, ceiling) — pin to the ceiling itself.
        monkeypatch.setattr(
            "repro.service.client.random.uniform", lambda low, high: high
        )
        for attempt in range(8):
            client._sleep_before_retry(attempt)
        assert sleeps[:4] == [0.05, 0.1, 0.2, 0.4]
        assert sleeps[-1] == client.backoff_cap
        assert all(value <= client.backoff_cap for value in sleeps)

    def test_floor_wins_over_small_ceiling(self, monkeypatch, client):
        sleeps = []
        monkeypatch.setattr(
            "repro.service.client.time.sleep", sleeps.append
        )
        monkeypatch.setattr(
            "repro.service.client.random.uniform", lambda low, high: high
        )
        client._sleep_before_retry(0, floor=1.0)
        assert sleeps == [1.0]


class TestWaitBackoff:
    def test_wait_poll_interval_grows_to_cap(self, monkeypatch, client):
        """No more fixed 50 ms hammering: the poll interval ramps up."""
        sleeps = []
        monkeypatch.setattr(
            "repro.service.client.time.sleep", sleeps.append
        )
        monkeypatch.setattr(
            "repro.service.client.random.uniform", lambda low, high: high
        )
        polls = []

        def fake_job(job_id):
            polls.append(job_id)
            status = "running" if len(polls) < 10 else "finished"
            return {"job_id": job_id, "status": status}

        monkeypatch.setattr(client, "job", fake_job)
        record = client.wait("j1", timeout=60, poll_floor=0.05, poll_cap=1.0)
        assert record["status"] == "finished"
        assert len(polls) == 10
        assert sleeps == sorted(sleeps)  # monotone ramp
        assert sleeps[0] == pytest.approx(0.05)
        assert sleeps[-1] == pytest.approx(1.0)  # reached the cap
        assert all(value <= 1.0 for value in sleeps)

    def test_wait_rides_out_a_restart(self, monkeypatch, client):
        """Connection errors mid-wait are tolerated until the deadline."""
        monkeypatch.setattr(
            "repro.service.client.time.sleep", lambda seconds: None
        )
        polls = []

        def flaky_job(job_id):
            polls.append(job_id)
            if len(polls) < 4:
                raise ConnectionRefusedError("service restarting")
            return {"job_id": job_id, "status": "finished"}

        monkeypatch.setattr(client, "job", flaky_job)
        record = client.wait("j1", timeout=60)
        assert record["status"] == "finished"
        assert len(polls) == 4

    def test_wait_reports_unreachable_service(self, monkeypatch, client):
        monkeypatch.setattr(
            "repro.service.client.time.sleep", lambda seconds: None
        )

        def dead_job(job_id):
            raise ConnectionRefusedError("gone")

        monkeypatch.setattr(client, "job", dead_job)
        with pytest.raises(TimeoutError, match="unreachable"):
            client.wait("j1", timeout=0.2)
