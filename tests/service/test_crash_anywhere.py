"""Crash-anywhere acceptance: SIGKILL a live server at seeded points.

The tentpole contract. A fault plan shipped via ``REPRO_SERVICE_FAULTS``
SIGKILLs the server subprocess at one instrumented point — mid-intent,
mid-manifest-write (both sides of the rename), after the quota charge
but before the HTTP ack, at the top of the dispatcher loop, at the
first journal append. The harness then restarts the service clean with
``--auto-resume`` and replays the submit under its ``Idempotency-Key``.

At *every* point the outcome must converge to exactly one admitted job
whose chain finishes with a merged report byte-identical to a direct
:class:`FleetOrchestrator` run, with the tenant's packet-budget charge
exactly one job's worth — zero lost jobs, zero duplicates, zero quota
drift.
"""

from __future__ import annotations

import os
import socket
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.core.config import FuzzConfig
from repro.core.faults import (
    SERVICE_FAULT_SITES,
    SERVICE_FAULTS_ENV,
    ServiceFaultPlan,
    ServiceFaultSpec,
)
from repro.core.fleet import FleetOrchestrator
from repro.service import ServiceClient
from repro.testbed.profiles import PROFILES_BY_ID

#: The service runs one in-process worker so a SIGKILL takes the whole
#: stack — scheduler, runtime and workers — down as one crash domain.
POOL_WORKERS = 1

SPEC = {
    "profiles": ["D1", "D2"],
    "strategies": ["sequential"],
    "targets": ["l2cap"],
    "budget": 300,
    "seed": 29,
}

IDEMPOTENCY_KEY = "crash-anywhere-submit"


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def start_server(
    data_dir: Path, port: int, *extra_args: str, faults: str | None = None
) -> subprocess.Popen:
    src = str(Path(__file__).resolve().parents[2] / "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        part for part in (src, env.get("PYTHONPATH")) if part
    )
    if faults is not None:
        env[SERVICE_FAULTS_ENV] = faults
    else:
        env.pop(SERVICE_FAULTS_ENV, None)
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--data-dir",
            str(data_dir),
            "--port",
            str(port),
            "--workers",
            str(POOL_WORKERS),
            *extra_args,
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
    )


def wait_healthy_or_dead(
    server: subprocess.Popen, client: ServiceClient, timeout: float = 30.0
) -> bool:
    """True once the server answers /healthz; False if it died first."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if server.poll() is not None:
            return False
        try:
            client.health()
            return True
        except OSError:
            time.sleep(0.05)
    raise TimeoutError("server neither healthy nor dead")


@pytest.fixture(scope="module")
def direct_report() -> str:
    """The byte-exact report the surviving chain must converge to."""
    orchestrator = FleetOrchestrator(
        profiles=[PROFILES_BY_ID[d] for d in SPEC["profiles"]],
        strategies=list(SPEC["strategies"]),
        targets=list(SPEC["targets"]),
        fleet_seed=SPEC["seed"],
        workers=POOL_WORKERS,
        base_config=FuzzConfig(max_packets=SPEC["budget"]),
    )
    with orchestrator:
        return orchestrator.run().to_json()


@pytest.mark.parametrize("site", SERVICE_FAULT_SITES)
def test_sigkill_at_site_converges_byte_identically(
    tmp_path, site, direct_report
):
    data_dir = tmp_path / "service"
    plan = ServiceFaultPlan(
        faults=(ServiceFaultSpec(kind="kill", site=site),),
        ledger_dir=str(tmp_path / "fault-ledger"),
    )

    # -- phase 1: a server armed to die at the site, mid-job ------------
    port = free_port()
    server = start_server(data_dir, port, faults=plan.to_json())
    client = ServiceClient(
        f"http://127.0.0.1:{port}", tenant="alpha", timeout=10.0
    )
    try:
        if wait_healthy_or_dead(server, client):
            try:
                client.submit(SPEC, idempotency_key=IDEMPOTENCY_KEY)
            except OSError:
                pass  # the kill landed mid-request; that is the point
        server.wait(timeout=60)  # the armed site always fires
    finally:
        if server.poll() is None:
            server.kill()
            server.wait(timeout=30)
            pytest.fail(f"kill at {site!r} never fired")

    # -- phase 2: restart clean, replay the submit, converge ------------
    port = free_port()
    server = start_server(data_dir, port, "--auto-resume")
    client = ServiceClient(
        f"http://127.0.0.1:{port}", tenant="alpha", timeout=10.0
    )
    try:
        assert wait_healthy_or_dead(server, client)
        replayed = client.submit(SPEC, idempotency_key=IDEMPOTENCY_KEY)
        root_id = replayed["job_id"]

        # Converge: the chain rooted at the admitted job must finish.
        deadline = time.monotonic() + 240
        finished = None
        while time.monotonic() < deadline:
            jobs = {record["job_id"]: record for record in client.jobs()}
            chain = {root_id}
            grew = True
            while grew:
                grew = False
                for record in jobs.values():
                    if (
                        record["resume_of"] in chain
                        and record["job_id"] not in chain
                    ):
                        chain.add(record["job_id"])
                        grew = True
            finished = next(
                (
                    jobs[job_id]
                    for job_id in chain
                    if jobs[job_id]["status"] == "finished"
                ),
                None,
            )
            if finished is not None:
                break
            if all(
                jobs[job_id]["status"] in ("cancelled", "aborted")
                for job_id in chain
            ) and not any(jobs[job_id]["status"] == "queued" for job_id in chain):
                # Give auto-resume a beat to extend the chain.
                time.sleep(0.3)
            else:
                time.sleep(0.1)
        assert finished is not None, (
            f"chain never converged after kill at {site!r}: "
            f"{[(j['job_id'], j['status'], j['error']) for j in jobs.values()]}"
        )

        # Byte-identical to the direct orchestrator run.
        assert client.report_text(finished["job_id"]) == direct_report

        # Zero lost or duplicated jobs: exactly one non-resume admission
        # for the key, and the quota charge is exactly one job's worth.
        all_jobs = client.jobs()
        roots = [job for job in all_jobs if job["resume_of"] is None]
        assert len(roots) == 1
        assert roots[0]["idempotency_key"] == IDEMPOTENCY_KEY
        expected_packets = (
            len(SPEC["profiles"]) * SPEC["budget"]
        )  # 1 strategy x 1 target
        committed = sum(
            job["spec"]["budget"]
            * len(job["spec"]["profiles"])
            * len(job["spec"]["strategies"])
            * len(job["spec"]["targets"])
            for job in all_jobs
            if job["resume_of"] is None and not job["quota_refunded"]
        )
        assert committed == expected_packets
    finally:
        try:
            client.shutdown()
            server.wait(timeout=60)
        except (OSError, subprocess.TimeoutExpired):
            server.kill()
            server.wait(timeout=30)


def test_fault_ledger_survives_restart(tmp_path):
    """A restarted server sharing the ledger does not re-fire the kill:
    the same armed plan in the environment is already exhausted."""
    data_dir = tmp_path / "service"
    plan = ServiceFaultPlan(
        faults=(
            ServiceFaultSpec(kind="kill", site="scheduler.quota.charge"),
        ),
        ledger_dir=str(tmp_path / "fault-ledger"),
    )
    port = free_port()
    server = start_server(data_dir, port, faults=plan.to_json())
    client = ServiceClient(
        f"http://127.0.0.1:{port}", tenant="alpha", timeout=10.0
    )
    try:
        assert wait_healthy_or_dead(server, client)
        try:
            client.submit(SPEC, idempotency_key="ledger-key")
        except OSError:
            pass
        server.wait(timeout=60)
    finally:
        if server.poll() is None:
            server.kill()
            server.wait(timeout=30)

    # Restart with the SAME armed environment: the marker ledger has the
    # occurrence claimed, so the submit replays and completes.
    port = free_port()
    server = start_server(
        data_dir, port, "--auto-resume", faults=plan.to_json()
    )
    client = ServiceClient(
        f"http://127.0.0.1:{port}", tenant="alpha", timeout=10.0
    )
    try:
        assert wait_healthy_or_dead(server, client)
        replayed = client.submit(SPEC, idempotency_key="ledger-key")
        final = client.wait(replayed["job_id"], timeout=240)
        assert final["status"] == "finished", final["error"]
    finally:
        try:
            client.shutdown()
            server.wait(timeout=60)
        except (OSError, subprocess.TimeoutExpired):
            server.kill()
            server.wait(timeout=30)
