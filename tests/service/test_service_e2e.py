"""End-to-end acceptance: two tenants on one live control plane.

The tentpole contract: jobs submitted over HTTP onto the shared warm
pool produce merged fleet reports byte-identical to the same specs run
directly through :class:`FleetOrchestrator`; cancel-then-resume over
the API completes byte-identically; and one tenant can never read
another's jobs, findings or corpus.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.core.config import FuzzConfig
from repro.core.fleet import FleetOrchestrator
from repro.service import (
    ControlPlaneThread,
    ServiceConfig,
    ServiceClient,
    ServiceError,
)
from repro.testbed.profiles import PROFILES_BY_ID

POOL_WORKERS = 2

ALPHA_SPEC = {
    "profiles": ["D1", "D2"],
    "strategies": ["sequential", "targeted"],
    "targets": ["l2cap"],
    "budget": 250,
    "seed": 11,
}
BETA_SPEC = {
    "profiles": ["D3"],
    "strategies": ["sequential"],
    "targets": ["l2cap", "rfcomm"],
    "budget": 250,
    "seed": 23,
}


def direct_report_json(spec: dict) -> str:
    """The same spec run straight through the orchestrator."""
    orchestrator = FleetOrchestrator(
        profiles=[PROFILES_BY_ID[d] for d in spec["profiles"]],
        strategies=list(spec["strategies"]),
        targets=list(spec["targets"]),
        fleet_seed=spec["seed"],
        workers=POOL_WORKERS,
        base_config=FuzzConfig(max_packets=spec["budget"]),
    )
    with orchestrator:
        return orchestrator.run().to_json()


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    config = ServiceConfig(
        data_dir=tmp_path_factory.mktemp("service"),
        port=0,
        pool_workers=POOL_WORKERS,
    )
    with ControlPlaneThread(config) as live:
        yield live


@pytest.fixture()
def alpha(server):
    return ServiceClient(server.base_url, tenant="alpha")


@pytest.fixture()
def beta(server):
    return ServiceClient(server.base_url, tenant="beta")


class TestOverlappingTenants:
    def test_reports_byte_identical_to_direct_runs(self, alpha, beta):
        """Two tenants' overlapping jobs share one warm pool; each
        merged report is byte-identical to a direct orchestrator run."""
        job_a = alpha.submit(ALPHA_SPEC)
        job_b = beta.submit(BETA_SPEC)

        final_a = alpha.wait(job_a["job_id"], timeout=300)
        final_b = beta.wait(job_b["job_id"], timeout=300)
        assert final_a["status"] == "finished", final_a["error"]
        assert final_b["status"] == "finished", final_b["error"]

        assert alpha.report_text(job_a["job_id"]) == direct_report_json(
            ALPHA_SPEC
        )
        assert beta.report_text(job_b["job_id"]) == direct_report_json(
            BETA_SPEC
        )

    def test_status_events_and_metrics_served(self, alpha):
        record = alpha.submit({"profiles": ["D1"], "budget": 60, "seed": 3})
        final = alpha.wait(record["job_id"], timeout=120)
        assert final["status"] == "finished"

        status = alpha.status(record["job_id"])
        assert status["status"] == "finished"
        assert status["finished_campaigns"] == status["total_campaigns"] == 1
        assert status["job"]["job_id"] == record["job_id"]

        events = list(alpha.events(record["job_id"]))
        kinds = [event["event"] for event in events]
        assert "run_start" in kinds and "run_end" in kinds

        metrics = alpha.run_metrics(record["job_id"])
        assert metrics["counters"] or metrics["gauges"]
        prom = alpha.run_metrics_prometheus(record["job_id"])
        assert "# TYPE" in prom

        service_prom = alpha.service_metrics()
        assert "service_jobs_finished_total" in service_prom
        runs = alpha.runs()
        assert final["run_id"] in {row["run_id"] for row in runs}


class TestCancelResume:
    def test_cancel_then_resume_is_byte_identical(self, alpha):
        spec = {
            "profiles": ["D1", "D2", "D3"],
            "strategies": ["sequential", "targeted"],
            "budget": 1200,
            "seed": 5,
            "batch": 1,
        }
        record = alpha.submit(spec)
        job_id = record["job_id"]

        # Cancel once the run is under way (some campaigns finished,
        # some pending). If the job outruns us, skip — nothing to test.
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            current = alpha.job(job_id)
            if current["status"] != "running" and current["status"] != "queued":
                break
            if current["run_id"] is not None:
                status = alpha.status(job_id)
                if status["finished_campaigns"] >= 1:
                    break
            time.sleep(0.02)
        current = alpha.job(job_id)
        if current["status"] in ("queued", "running"):
            alpha.cancel(job_id)
        final = alpha.wait(job_id, timeout=120)
        if final["status"] == "finished":
            pytest.skip("job finished before cancel landed")
        assert final["status"] == "cancelled"

        with pytest.raises(ServiceError) as excinfo:
            alpha.report(job_id)
        assert excinfo.value.status == 409

        resumed = alpha.resume(job_id)
        assert resumed["resume_of"] == job_id
        assert resumed["run_id"] == final["run_id"]
        done = alpha.wait(resumed["job_id"], timeout=300)
        assert done["status"] == "finished", done["error"]
        assert alpha.report_text(resumed["job_id"]) == direct_report_json(
            {
                "profiles": spec["profiles"],
                "strategies": spec["strategies"],
                "targets": ["l2cap"],
                "budget": spec["budget"],
                "seed": spec["seed"],
            }
        )

    def test_resume_of_finished_job_is_409(self, alpha):
        record = alpha.submit({"profiles": ["D1"], "budget": 40})
        alpha.wait(record["job_id"], timeout=120)
        with pytest.raises(ServiceError) as excinfo:
            alpha.resume(record["job_id"])
        assert excinfo.value.status == 409


class TestTenantIsolation:
    def test_foreign_jobs_are_invisible(self, alpha, beta):
        record = alpha.submit({"profiles": ["D1"], "budget": 40})
        alpha.wait(record["job_id"], timeout=120)
        job_id = record["job_id"]

        assert job_id not in {job["job_id"] for job in beta.jobs()}
        for call in (
            lambda: beta.job(job_id),
            lambda: beta.report(job_id),
            lambda: beta.status(job_id),
            lambda: beta.cancel(job_id),
            lambda: beta.resume(job_id),
            lambda: list(beta.events(job_id)),
        ):
            with pytest.raises(ServiceError) as excinfo:
                call()
            assert excinfo.value.status == 404

    def test_foreign_tenant_resources_are_404(self, server, alpha):
        alpha_corpus = alpha.corpus()
        assert alpha_corpus["backend"] == "sqlite"

        mallory = ServiceClient(server.base_url, tenant="mallory")
        for path in (
            "/v1/tenants/alpha/runs",
            "/v1/tenants/alpha/findings",
            "/v1/tenants/alpha/corpus",
        ):
            status, body, _ = mallory._request("GET", path)
            assert status == 404, (path, body)

    def test_missing_tenant_header_is_400(self, server):
        anonymous = ServiceClient(server.base_url, tenant=None)
        with pytest.raises(ServiceError) as excinfo:
            anonymous.jobs()
        assert excinfo.value.status == 400


class TestQuotasOverHttp:
    def test_quota_exceeded_is_429(self, tmp_path):
        config = ServiceConfig(
            data_dir=tmp_path,
            port=0,
            pool_workers=1,
            max_active_jobs=1,
            packet_budget=10_000,
        )
        with ControlPlaneThread(config) as live:
            client = ServiceClient(live.base_url, tenant="alpha")
            first = client.submit(
                {"profiles": ["D1", "D2"], "budget": 900, "batch": 1}
            )
            with pytest.raises(ServiceError) as excinfo:
                client.submit({"profiles": ["D1"], "budget": 40})
            assert excinfo.value.status == 429
            client.wait(first["job_id"], timeout=240)
            # Slot freed: admission works again, budget still counted.
            with pytest.raises(ServiceError) as excinfo:
                client.submit({"profiles": ["D1"], "budget": 9000})
            assert excinfo.value.status == 429
            second = client.submit({"profiles": ["D1"], "budget": 40})
            client.wait(second["job_id"], timeout=120)

    def test_bad_spec_is_400_unknown_route_404(self, tmp_path):
        config = ServiceConfig(data_dir=tmp_path, port=0, pool_workers=1)
        with ControlPlaneThread(config) as live:
            client = ServiceClient(live.base_url, tenant="alpha")
            with pytest.raises(ServiceError) as excinfo:
                client.submit({"profiles": ["D99"]})
            assert excinfo.value.status == 400
            status, _, _ = client._request("GET", "/v1/nope")
            assert status == 404
            status, _, _ = client._request("DELETE", "/v1/jobs")
            assert status == 405
            health = client.health()
            assert health["status"] == "ok"
