"""Unit tests for the HTTP parsing primitives and the router."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.service.http import (
    HttpError,
    Request,
    Response,
    read_request,
)
from repro.service.router import Router


def parse(raw: bytes) -> Request | None:
    async def _run():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader)

    return asyncio.run(_run())


class TestReadRequest:
    def test_parses_request_line_headers_and_body(self):
        body = b'{"a": 1}'
        raw = (
            b"POST /v1/jobs?x=1&empty= HTTP/1.1\r\n"
            b"Host: localhost\r\n"
            b"X-Repro-Tenant: alpha\r\n"
            + f"Content-Length: {len(body)}\r\n\r\n".encode()
            + body
        )
        request = parse(raw)
        assert request.method == "POST"
        assert request.path == "/v1/jobs"
        assert request.query == {"x": "1", "empty": ""}
        assert request.header("x-repro-tenant") == "alpha"
        assert request.json() == {"a": 1}

    def test_clean_eof_returns_none(self):
        assert parse(b"") is None

    def test_truncated_request_rejected(self):
        with pytest.raises(HttpError) as excinfo:
            parse(b"GET /healthz HTT")
        assert excinfo.value.status == 400

    def test_malformed_request_line_rejected(self):
        with pytest.raises(HttpError) as excinfo:
            parse(b"NONSENSE\r\n\r\n")
        assert excinfo.value.status == 400

    def test_bad_content_length_rejected(self):
        raw = b"POST / HTTP/1.1\r\nContent-Length: banana\r\n\r\n"
        with pytest.raises(HttpError) as excinfo:
            parse(raw)
        assert excinfo.value.status == 400

    def test_truncated_body_rejected(self):
        raw = b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort"
        with pytest.raises(HttpError) as excinfo:
            parse(raw)
        assert excinfo.value.status == 400

    def test_percent_encoding_decoded(self):
        request = parse(b"GET /v1/jobs/job%2D1 HTTP/1.1\r\n\r\n")
        assert request.path == "/v1/jobs/job-1"


class TestRequestJson:
    def test_malformed_json_is_400(self):
        request = Request(
            method="POST", path="/", query={}, headers={}, body=b"{nope"
        )
        with pytest.raises(HttpError) as excinfo:
            request.json()
        assert excinfo.value.status == 400

    def test_non_object_json_is_400(self):
        request = Request(
            method="POST", path="/", query={}, headers={}, body=b"[1, 2]"
        )
        with pytest.raises(HttpError):
            request.json()

    def test_empty_body_is_empty_object(self):
        request = Request(
            method="POST", path="/", query={}, headers={}, body=b""
        )
        assert request.json() == {}


class TestResponse:
    def test_json_response_round_trips(self):
        response = Response.json_response({"jobs": []}, status=202)
        assert response.status == 202
        assert json.loads(response.body) == {"jobs": []}
        assert response.body.endswith(b"\n")


class TestRouter:
    def _router(self):
        router = Router()
        router.add("GET", "/v1/jobs", lambda: "list")
        router.add("POST", "/v1/jobs", lambda: "submit")
        router.add("GET", "/v1/jobs/{job_id}", lambda: "get")
        router.add(
            "POST", "/v1/jobs/{job_id}/cancel", lambda: "cancel"
        )
        router.add(
            "GET",
            "/v1/tenants/{tenant}/corpus/{entry_id}",
            lambda: "entry",
        )
        return router

    def test_static_and_parameterised_routes(self):
        router = self._router()
        handler, params = router.route("GET", "/v1/jobs")
        assert handler() == "list" and params == {}
        handler, params = router.route("GET", "/v1/jobs/job-123")
        assert handler() == "get" and params == {"job_id": "job-123"}
        handler, params = router.route(
            "GET", "/v1/tenants/alpha/corpus/entry-9"
        )
        assert params == {"tenant": "alpha", "entry_id": "entry-9"}

    def test_method_mismatch_is_405(self):
        with pytest.raises(HttpError) as excinfo:
            self._router().route("DELETE", "/v1/jobs")
        assert excinfo.value.status == 405

    def test_unknown_path_is_404(self):
        with pytest.raises(HttpError) as excinfo:
            self._router().route("GET", "/v1/nothing")
        assert excinfo.value.status == 404

    def test_captures_do_not_span_segments(self):
        with pytest.raises(HttpError) as excinfo:
            self._router().route("GET", "/v1/jobs/a/b/c")
        assert excinfo.value.status == 404
