"""Registry tests: targets fail fast when their hook surface is broken."""

from __future__ import annotations

import pytest

from repro.targets import (
    TARGET_NAMES,
    FuzzTarget,
    TargetRegistrationError,
    make_target,
    register_target,
)
from repro.targets.base import REQUIRED_HOOKS, _REGISTRY


class TestRegistry:
    def test_builtin_targets_registered_in_order(self):
        assert TARGET_NAMES == ("l2cap", "rfcomm", "sdp", "obex")

    def test_make_target_builds_each(self):
        for name in TARGET_NAMES:
            assert make_target(name).name == name

    def test_unknown_target_lists_valid_names(self):
        with pytest.raises(ValueError, match="l2cap, rfcomm, sdp, obex"):
            make_target("zigbee")

    def test_every_builtin_satisfies_the_hook_surface(self):
        for name in TARGET_NAMES:
            target = make_target(name)
            for attribute, expect_callable in REQUIRED_HOOKS:
                assert hasattr(target, attribute)
                if expect_callable:
                    assert callable(getattr(target, attribute))


class TestFailFastRegistration:
    def test_missing_hook_rejected_at_registration(self):
        class NoGuide(FuzzTarget):
            name = "no-guide"

            def state_plan(self):
                return ()

            # build_guide, build_mutator, commands_for, codec hooks and
            # the validity predicate are all missing.

        with pytest.raises(TargetRegistrationError, match="build_guide"):
            register_target(NoGuide)
        assert "no-guide" not in _REGISTRY

    def test_non_callable_hook_rejected(self):
        class BadHook(FuzzTarget):
            name = "bad-hook"
            state_plan = ()  # data where a callable is required
            build_guide = build_mutator = commands_for = staticmethod(lambda *a: None)
            encode_payload = decode_payload = staticmethod(lambda *a: b"")
            is_structurally_valid = staticmethod(lambda *a: True)

        with pytest.raises(TargetRegistrationError, match="state_plan"):
            register_target(BadHook)

    def test_empty_name_rejected(self):
        class NoName(FuzzTarget):
            state_plan = build_guide = build_mutator = commands_for = (
                staticmethod(lambda *a: None)
            )
            encode_payload = decode_payload = staticmethod(lambda *a: b"")
            is_structurally_valid = staticmethod(lambda *a: True)

        with pytest.raises(TargetRegistrationError, match="non-empty"):
            register_target(NoName)

    def test_duplicate_name_rejected(self):
        class Impostor(FuzzTarget):
            name = "l2cap"
            state_plan = build_guide = build_mutator = commands_for = (
                staticmethod(lambda *a: None)
            )
            encode_payload = decode_payload = staticmethod(lambda *a: b"")
            is_structurally_valid = staticmethod(lambda *a: True)

        with pytest.raises(TargetRegistrationError, match="already registered"):
            register_target(Impostor)

    def test_reregistering_same_class_is_idempotent(self):
        from repro.targets.l2cap import L2capTarget

        assert register_target(L2capTarget) is L2capTarget
