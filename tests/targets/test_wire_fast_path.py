"""The bytes-level mutation fast path must be invisible.

``mutate_wire`` exists purely for speed: with ``wire_fast_path`` on
(the default), every campaign must remain **byte-identical** — same
wire bytes, same simulated timestamps, same RNG stream, same report —
to the field-object reference path. These tests replay campaigns under
both configurations across all four protocol targets and diff the full
traces, and pin the golden D2 sequential campaign of the seed suite.
"""

from __future__ import annotations

import dataclasses
import hashlib
import random

import pytest

from repro.core.config import FuzzConfig
from repro.core.mutation import CoreFieldMutator
from repro.l2cap.packets import COMMAND_SPECS, L2capPacket
from repro.testbed.profiles import D1, D2
from repro.testbed.session import FuzzSession, run_campaign

ALL_TARGETS = ("l2cap", "rfcomm", "sdp", "obex")


def _trace_digest(config: FuzzConfig, target: str, armed: bool) -> str:
    session = FuzzSession(
        profile=D2, config=config, armed=armed, target=target
    )
    session.run()
    digest = hashlib.sha256()
    for traced in session.fuzzer.sniffer.trace:
        digest.update(traced.direction.value.encode())
        digest.update(traced.packet.encode())
        digest.update(repr(round(traced.sim_time, 9)).encode())
    return digest.hexdigest()


class TestCampaignEquivalence:
    @pytest.mark.parametrize("target", ALL_TARGETS)
    def test_trace_byte_identical_fast_vs_reference(self, target):
        armed = target == "l2cap"
        fast = _trace_digest(FuzzConfig(max_packets=1_500), target, armed)
        reference = _trace_digest(
            FuzzConfig(max_packets=1_500, wire_fast_path=False), target, armed
        )
        assert fast == reference

    def test_reports_equal_fast_vs_reference(self):
        fast = run_campaign(D1, FuzzConfig(max_packets=2_000), armed=False)
        reference = run_campaign(
            D1, FuzzConfig(max_packets=2_000, wire_fast_path=False), armed=False
        )
        assert fast == reference

    def test_golden_d2_sequential_campaign_unchanged(self):
        """The seed suite's 226-packet golden run, fast path enabled."""
        report = run_campaign(D2, FuzzConfig(max_packets=50_000))
        assert report.packets_sent == 226
        assert report.elapsed_seconds == pytest.approx(112.931076, abs=1e-6)
        assert report.efficiency.malformed == 151
        assert report.efficiency.rejections == 54
        assert report.findings[0].trigger == (
            "CONFIGURATION_REQ(id=225, dcid=0xE6EE, flags=0x0000) "
            "garbage=1ca550ece866149dd33236408c0f"
        )


class TestCoreMutatorWirePath:
    @pytest.mark.parametrize("code", sorted(COMMAND_SPECS))
    def test_every_command_matches_object_path(self, code):
        config = FuzzConfig()
        object_path = CoreFieldMutator(config, random.Random(99))
        wire_path = CoreFieldMutator(config, random.Random(99))
        for identifier in (1, 77, 255):
            expected = object_path.mutate(code, identifier)
            produced = wire_path.mutate_wire(code, identifier)
            assert produced is not None
            assert produced.encode() == expected.encode()
            assert dict(produced.fields) == dict(expected.fields)
            assert produced.garbage == expected.garbage
        # Both mutators must also have consumed the RNG identically.
        assert object_path.rng.getstate() == wire_path.rng.getstate()

    def test_dictionary_splices_identically(self):
        config = FuzzConfig()
        dictionary = (b"\xde\xad\xbe\xef" * 3, b"\x01\x02")
        object_path = CoreFieldMutator(
            config, random.Random(5), dictionary=dictionary
        )
        wire_path = CoreFieldMutator(
            config, random.Random(5), dictionary=dictionary
        )
        for code in sorted(COMMAND_SPECS):
            for identifier in range(1, 30):
                assert (
                    wire_path.mutate_wire(code, identifier).encode()
                    == object_path.mutate(code, identifier).encode()
                )

    def test_ablation_config_falls_back_to_object_path(self):
        # BFuzz-style dependent-field corruption draws mid-mutation RNG
        # the wire path does not model; it must decline.
        config = FuzzConfig(mutate_core_fields_only=False)
        mutator = CoreFieldMutator(config, random.Random(3))
        assert mutator.mutate_wire(next(iter(COMMAND_SPECS)), 1) is None

    def test_unknown_code_falls_back(self):
        mutator = CoreFieldMutator(FuzzConfig(), random.Random(3))
        assert mutator.mutate_wire(0xEE, 1) is None

    def test_fast_packet_is_mutable_afterwards(self):
        # The primed encode cache must invalidate like any packet's.
        mutator = CoreFieldMutator(FuzzConfig(), random.Random(11))
        packet = mutator.mutate_wire(next(iter(COMMAND_SPECS)), 9)
        before = packet.encode()
        packet.identifier = 42
        after = packet.encode()
        assert after != before
        assert L2capPacket.decode(after).identifier == 42

    def test_ablation_campaign_still_equivalent(self):
        # With the ablation config, the engine transparently falls back —
        # the campaign must match the reference path bit for bit too.
        base = FuzzConfig(max_packets=800, mutate_core_fields_only=False)
        fast = run_campaign(D1, base, armed=False)
        reference = run_campaign(
            D1,
            dataclasses.replace(base, wire_fast_path=False),
            armed=False,
        )
        assert fast == reference
