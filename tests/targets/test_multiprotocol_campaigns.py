"""Campaign-level tests across every registered fuzz target.

Pins the acceptance criteria of the protocol-agnostic redesign:

* ``repro fuzz --target X`` runs a full campaign for all four targets;
* streaming (``retain_trace=False``) and retained campaigns agree on
  every report metric, per target;
* a fleet over ≥2 protocols produces a merged report with per-target
  coverage maps and cross-protocol-deduped findings;
* corpus write-back and replay carry the target name end to end.
"""

from __future__ import annotations

import pytest

from repro.analysis.metrics import MutationEfficiency
from repro.core.config import FuzzConfig
from repro.core.detection import Finding, VulnerabilityClass
from repro.core.fleet import (
    CampaignRun,
    CampaignSpec,
    FleetOrchestrator,
    derive_campaign_seed,
    merge_reports,
)
from repro.core.report import CampaignReport
from repro.l2cap.states import ChannelState
from repro.targets import TARGET_NAMES, make_target
from repro.testbed.profiles import D1, D2, D5, PROFILES_BY_ID
from repro.testbed.session import FuzzSession, run_campaign

ALL_TARGETS = TARGET_NAMES


class TestEveryTargetRunsACampaign:
    @pytest.mark.parametrize("name", ALL_TARGETS)
    def test_full_campaign_covers_the_plan(self, name):
        target = make_target(name)
        report = run_campaign(
            D2, FuzzConfig(max_packets=2500), armed=False, target=name
        )
        assert report.fuzz_target == name
        assert report.state_space == len(target.state_universe())
        assert report.packets_sent >= 2500
        plan_names = {state.value for state in target.state_plan()}
        covered = {state.value for state in report.covered_states}
        assert plan_names <= covered
        assert report.sweeps_completed >= 1

    @pytest.mark.parametrize("name", ALL_TARGETS)
    def test_campaigns_are_deterministic(self, name):
        first = run_campaign(
            D2, FuzzConfig(max_packets=800, seed=11), armed=False, target=name
        )
        second = run_campaign(
            D2, FuzzConfig(max_packets=800, seed=11), armed=False, target=name
        )
        assert first == second

    @pytest.mark.parametrize("name", ALL_TARGETS)
    def test_streaming_and_retained_metrics_agree(self, name):
        retained = run_campaign(
            D1, FuzzConfig(max_packets=1200), armed=False, target=name,
            retain_trace=True,
        )
        streamed = run_campaign(
            D1, FuzzConfig(max_packets=1200), armed=False, target=name,
            retain_trace=False,
        )
        assert retained == streamed  # every metric, field for field


class TestMultiProtocolFleet:
    def _run(self):
        return FleetOrchestrator(
            profiles=[D2, D5],
            strategies=["sequential"],
            targets=["l2cap", "rfcomm"],
            fleet_seed=7,
            base_config=FuzzConfig(max_packets=1200),
        ).run()

    def test_matrix_sweeps_strategies_times_protocols(self):
        report = self._run()
        assert len(report.campaigns) == 4  # 2 profiles x 1 strategy x 2 targets
        assert [run.spec.target for run in report.campaigns] == [
            "l2cap", "rfcomm", "l2cap", "rfcomm",
        ]
        assert report.targets == ("l2cap", "rfcomm")

    def test_per_target_coverage_maps(self):
        report = self._run()
        coverage = report.coverage_by_target()
        assert set(coverage) == {"l2cap", "rfcomm"}
        rfcomm_states = {state for state, _ in coverage["rfcomm"]}
        assert rfcomm_states == {"MUX_CLOSED", "CONTROL_OPEN", "DATA_OPEN"}
        l2cap_states = {state for state, _ in coverage["l2cap"]}
        assert "CLOSED" in l2cap_states
        # Protocols never pollute each other's maps.
        assert not rfcomm_states & l2cap_states
        spaces = dict(report.state_spaces)
        assert spaces == {"l2cap": 19, "rfcomm": 3}

    def test_findings_carry_their_protocol(self):
        report = self._run()
        by_target = {finding.target for finding in report.findings}
        # D2's L2CAP bug and both devices' RFCOMM mux overflow.
        assert by_target == {"l2cap", "rfcomm"}

    def test_rendering_includes_per_target_sections(self):
        report = self._run()
        markdown = report.to_markdown()
        assert "## Merged coverage map — l2cap (" in markdown
        assert "## Merged coverage map — rfcomm (3/3)" in markdown
        assert "| protocol |" in markdown
        decoded = report.to_dict()
        assert decoded["targets"] == ["l2cap", "rfcomm"]
        assert {row["target"] for row in decoded["coverage_map"]} == {
            "l2cap",
            "rfcomm",
        }

    def test_worker_count_does_not_change_results(self):
        single = self._run().to_dict()
        double = FleetOrchestrator(
            profiles=[D2, D5],
            strategies=["sequential"],
            targets=["l2cap", "rfcomm"],
            fleet_seed=7,
            workers=2,
            base_config=FuzzConfig(max_packets=1200),
        ).run().to_dict()
        for schedule_key in (
            "workers",
            "simulated_makespan_seconds",
            "campaigns_per_simulated_second",
        ):
            single.pop(schedule_key)
            double.pop(schedule_key)
        assert single == double

    def test_unknown_target_fails_fast(self):
        with pytest.raises(ValueError, match="unknown fuzz target"):
            FleetOrchestrator(
                profiles=[D2], strategies=["sequential"], targets=["zigbee"]
            )
        with pytest.raises(ValueError, match="at least one fuzz target"):
            FleetOrchestrator(
                profiles=[D2], strategies=["sequential"], targets=[]
            )


class TestAutoResetAcrossProtocols:
    def test_rfcomm_auto_reset_reconnects_and_refinds(self):
        """After a reset the guide reopens its channel and hits the bug
        again — the long-term-fuzzing extension works per protocol."""
        session = FuzzSession(
            D5,
            FuzzConfig(max_packets=3000),
            target="rfcomm",
            auto_reset=True,
        )
        report = session.run()
        assert len(report.findings) >= 2  # found it again after reset
        assert session.device.reset_count >= 2
        assert report.packets_sent >= 3000


class TestConfirmedCoverage:
    def test_unanswered_routing_is_not_counted_as_coverage(self):
        """A target that never acknowledges the mux handshake yields no
        RFCOMM coverage — visits are attempts, coverage is confirmed."""
        from repro.core.fuzzer import L2Fuzz
        from repro.hci.transport import SimClock, VirtualLink
        from repro.l2cap.constants import Psm
        from repro.stack.device import DeviceMeta, VirtualDevice
        from repro.stack.services import ServiceDirectory, ServiceRecord
        from repro.stack.vendors import BLUEDROID

        # RFCOMM port open at the L2CAP level, but no mux behind it:
        # SABM/DISC frames are swallowed, never answered.
        clock = SimClock()
        device = VirtualDevice(
            meta=DeviceMeta("AA:BB:CC:00:00:77", "muxless", "widget"),
            personality=BLUEDROID,
            services=ServiceDirectory(
                [
                    ServiceRecord(Psm.SDP, "SDP"),
                    ServiceRecord(Psm.RFCOMM, "Serial Port"),
                ]
            ),
            clock=clock,
        )
        link = VirtualLink(clock=clock)
        device.attach_to(link)
        fuzzer = L2Fuzz(
            link=link,
            inquiry=device.inquiry,
            browse=device.sdp_browse,
            config=FuzzConfig(max_packets=400),
            target="rfcomm",
        )
        report = fuzzer.run()
        # Every plan state was *visited* (routing was attempted)...
        assert dict(report.state_visits)
        # ...but none was demonstrably entered.
        assert report.covered_states == frozenset()


def _synthetic_run(index, device_id, trigger, target):
    finding = Finding(
        vulnerability_class=VulnerabilityClass.DOS,
        error_message="Connection Failed",
        state="WAIT_CONFIG",
        trigger=trigger,
        sim_time=10.0 + index,
        ping_failed=True,
        target=target,
    )
    report = CampaignReport(
        target_name=device_id,
        findings=(finding,),
        elapsed_seconds=100.0,
        packets_sent=500,
        sweeps_completed=1,
        efficiency=MutationEfficiency(500, 300, 400, 100, 100.0),
        covered_states=frozenset({ChannelState.CLOSED}),
        fuzz_target=target,
    )
    spec = CampaignSpec(
        index=index,
        device_id=device_id,
        strategy="sequential",
        seed=derive_campaign_seed(7, index),
        target=target,
    )
    return CampaignRun(spec=spec, report=report)


class TestCrossProtocolDedup:
    profiles = {"D1": D1, "D2": D2}

    def test_same_protocol_same_trigger_collapses(self):
        runs = [
            _synthetic_run(0, "D1", "UIH(x)", "rfcomm"),
            _synthetic_run(1, "D2", "UIH(x)", "rfcomm"),
        ]
        report = merge_reports(runs, self.profiles, fleet_seed=7, workers=1)
        assert len(report.findings) == 1
        assert report.findings[0].occurrences == 2

    def test_different_protocol_same_trigger_stays_separate(self):
        """The satellite bugfix: protocols never share a crash bucket."""
        runs = [
            _synthetic_run(0, "D1", "UIH(x)", "rfcomm"),
            _synthetic_run(1, "D2", "UIH(x)", "l2cap"),
        ]
        report = merge_reports(runs, self.profiles, fleet_seed=7, workers=1)
        assert len(report.findings) == 2
        assert {finding.target for finding in report.findings} == {
            "l2cap",
            "rfcomm",
        }


class TestCorpusCarriesTheTarget:
    def test_rfcomm_campaign_writes_target_stamped_corpus(self, tmp_path):
        from repro.corpus import CorpusStore, FindingDatabase
        from repro.corpus.replay import replay_finding

        corpus = tmp_path / "corpus"
        session = FuzzSession(
            D5,
            FuzzConfig(max_packets=2500),
            target="rfcomm",
            corpus_dir=str(corpus),
        )
        report = session.run()
        assert report.vulnerability_found

        entries = CorpusStore(corpus).entries()
        assert entries
        assert {entry.target for entry in entries} == {"rfcomm"}

        records = FindingDatabase(corpus).records()
        assert len(records) == 1
        record = records[0]
        assert record.target == "rfcomm"
        assert record.key[0] == "rfcomm"
        # The reproducer replays against a device prepared for RFCOMM.
        outcome = replay_finding(record, PROFILES_BY_ID)
        assert outcome.reproduced
        assert not outcome.regression
        assert outcome.outcome.crash_id == "rfcomm-uih-overflow"

    def test_entry_ids_differ_per_target(self):
        from repro.corpus.entry import content_id

        packets = ("0b00" "0400" "0100" "2f2f",)
        assert content_id(packets, "D2", True, "rfcomm") != content_id(
            packets, "D2", True, "l2cap"
        )
