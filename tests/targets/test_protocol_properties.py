"""Cross-protocol property suite: every registered target, same laws.

For each target the hypothesis properties pin:

* **validity** — every packet the mutator emits stays inside the
  target's structural-validity boundary (the paper's "valid malformed"
  discipline, per protocol);
* **decode∘encode round trip** — the codec hooks re-encode a decoded
  payload to the canonical frame (byte-exact, or an exact prefix for
  protocols whose framing tolerates trailing garbage), idempotently;
* **wire-cache invalidation** — mutating a packet after it has been
  encoded never serves stale cached wire bytes.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import FuzzConfig
from repro.core.state_guiding import GuidedState
from repro.l2cap.jobs import job_of
from repro.l2cap.packets import L2capPacket
from repro.targets import TARGET_NAMES, GuidedPosition, make_target
from repro.targets.obex import ObexChannel
from repro.targets.rfcomm import RfcommChannel
from repro.targets.sdp import SdpSession

_seeds = st.integers(min_value=0, max_value=2**32 - 1)
_target_names = st.sampled_from(TARGET_NAMES)


def _positions(target):
    """A GuidedPosition per plan state, with a synthetic routing context."""
    contexts = {
        "l2cap": lambda state: GuidedPosition(
            state,
            job_of(state).value,
            GuidedState(intended=state, job=job_of(state), channel=None),
        ),
        "rfcomm": lambda state: GuidedPosition(
            state, "Mux", RfcommChannel(our_cid=0x0090, target_cid=0x0040)
        ),
        "sdp": lambda state: GuidedPosition(
            state,
            "Discovery",
            SdpSession(our_cid=0x0B00, target_cid=0x0041, handles=(0x10000,)),
        ),
        "obex": lambda state: GuidedPosition(
            state, "Session", ObexChannel(our_cid=0x0D00, target_cid=0x0042)
        ),
    }[target.name]
    return [contexts(state) for state in target.state_plan()]


def _mutated_payloads(target, seed: int):
    """Every (packet, payload-bytes) the seeded mutator emits, one per
    (state, command) cell of the target's plan."""
    mutator = target.build_mutator(FuzzConfig(seed=seed), random.Random(seed))
    out = []
    identifier = 0
    for position in _positions(target):
        for command in target.commands_for(position):
            identifier = identifier % 0xFF + 1
            packet = mutator.mutate(position, command, identifier)
            payload = packet.encode() if target.name == "l2cap" else bytes(packet.tail)
            out.append((packet, payload))
    return out


class TestMutatorValidity:
    @given(_target_names, _seeds)
    @settings(max_examples=80, deadline=None)
    def test_mutated_payloads_stay_structurally_valid(self, name, seed):
        target = make_target(name)
        payloads = _mutated_payloads(target, seed)
        assert payloads
        for _, payload in payloads:
            assert target.is_structurally_valid(payload)


class TestCodecRoundTrip:
    @given(_target_names, _seeds)
    @settings(max_examples=80, deadline=None)
    def test_decode_encode_round_trips(self, name, seed):
        target = make_target(name)
        for _, payload in _mutated_payloads(target, seed):
            decoded = target.decode_payload(payload)
            canonical = target.encode_payload(decoded)
            # Byte-exact for framings that cover the whole payload;
            # an exact prefix where trailing garbage is legal (RFCOMM).
            assert payload.startswith(canonical)
            if name != "rfcomm":
                assert canonical == payload
            # Idempotence: the canonical form is a fixed point.
            assert target.encode_payload(target.decode_payload(canonical)) == canonical

    @given(_seeds)
    @settings(max_examples=80, deadline=None)
    def test_rfcomm_prefix_is_the_frame_without_garbage(self, seed):
        target = make_target("rfcomm")
        for _, payload in _mutated_payloads(target, seed):
            decoded = target.decode_payload(payload)
            canonical = target.encode_payload(decoded)
            # Whatever follows the canonical frame is the garbage tail.
            assert 0 <= len(payload) - len(canonical) <= FuzzConfig().max_garbage


class TestWireCacheInvalidation:
    @given(_target_names, _seeds)
    @settings(max_examples=80, deadline=None)
    def test_mutation_after_encode_is_never_stale(self, name, seed):
        target = make_target(name)
        for packet, _ in _mutated_payloads(target, seed):
            first = packet.encode()
            if name == "l2cap":
                packet.garbage = packet.garbage + b"\xa5"
            else:
                packet.tail = packet.tail + b"\xa5"
            second = packet.encode()
            assert second != first
            assert len(second) == len(first) + 1
            # The refreshed encoding is what a cold decode agrees with.
            assert L2capPacket.decode(second).encode() == second

    @given(_target_names, _seeds)
    @settings(max_examples=40, deadline=None)
    def test_wire_packets_survive_an_l2cap_round_trip(self, name, seed):
        """Every target's wire packets ride L2CAP frames loss-free."""
        target = make_target(name)
        for packet, _ in _mutated_payloads(target, seed):
            wire = packet.encode()
            assert L2capPacket.decode(wire).encode() == wire


def test_every_registered_target_is_exercised():
    """The suite covers the full registry (a new target joins for free)."""
    assert set(TARGET_NAMES) == {"l2cap", "rfcomm", "sdp", "obex"}
    for name in TARGET_NAMES:
        assert _mutated_payloads(make_target(name), seed=1)
