"""Tests for the injected bug models (the five paper zero-days)."""

from __future__ import annotations

import pytest

from repro.l2cap.constants import CommandCode
from repro.l2cap.jobs import Job
from repro.l2cap.packets import (
    L2capPacket,
    configuration_request,
    connection_request,
    create_channel_request,
    disconnection_request,
)
from repro.l2cap.states import ChannelState
from repro.stack.crash import CrashKind
from repro.stack.vulnerabilities import (
    BLUEDROID_CIDP_NULL_DEREF,
    BLUEDROID_CREATE_CHANNEL_DOS,
    BLUEZ_GPF,
    KNOWN_VULNERABILITIES,
    RTKIT_PSM_SHUTDOWN,
    TriggerContext,
)


def _context(
    packet,
    state=ChannelState.WAIT_CONFIG,
    job=Job.CONFIGURATION,
    allocated=frozenset(),
    live_states=frozenset(),
):
    return TriggerContext(
        packet=packet,
        state=state,
        job=job,
        allocated_cids=allocated,
        live_states=live_states,
    )


class TestCidpNullDeref:
    """D1/D2: the paper's §IV.E case study."""

    def _trigger_packet(self):
        packet = configuration_request(dcid=0x0040)
        packet.garbage = bytes.fromhex("D23A910E")
        return packet

    def test_fires_in_configuration_job(self):
        assert BLUEDROID_CIDP_NULL_DEREF.check(_context(self._trigger_packet()))

    def test_fires_in_open_state(self):
        context = _context(
            self._trigger_packet(), state=ChannelState.OPEN, job=Job.OPEN
        )
        assert BLUEDROID_CIDP_NULL_DEREF.check(context)

    def test_requires_garbage(self):
        packet = configuration_request(dcid=0x0040)
        assert not BLUEDROID_CIDP_NULL_DEREF.check(_context(packet))

    def test_requires_unallocated_dcid(self):
        packet = self._trigger_packet()
        context = _context(packet, allocated=frozenset({0x0040}))
        assert not BLUEDROID_CIDP_NULL_DEREF.check(context)

    def test_does_not_fire_outside_config(self):
        context = _context(
            self._trigger_packet(), state=ChannelState.CLOSED, job=Job.CLOSED
        )
        assert not BLUEDROID_CIDP_NULL_DEREF.check(context)

    def test_wrong_command_does_not_fire(self):
        packet = connection_request(psm=1, scid=0x40)
        packet.garbage = b"\x01"
        assert not BLUEDROID_CIDP_NULL_DEREF.check(_context(packet))

    def test_fire_produces_dos_tombstone(self):
        context = _context(self._trigger_packet())
        crash = BLUEDROID_CIDP_NULL_DEREF.fire(context, sim_time=85.0)
        assert crash.kind is CrashKind.DOS
        assert crash.fault_address == 0x20
        assert "l2c_csm_execute" in crash.function
        assert crash.sim_time == 85.0


class TestCreateChannelDos:
    """D3: Wait-Create DoS via malformed Create Channel Request."""

    def _trigger_packet(self, cont_id=5, scid=0x0040):
        packet = create_channel_request(psm=1, scid=scid, cont_id=cont_id)
        packet.garbage = b"\xff\xff"
        return packet

    def test_fires_during_creation_with_pending_channel(self):
        context = _context(
            self._trigger_packet(),
            state=ChannelState.WAIT_CREATE,
            job=Job.CREATION,
            live_states=frozenset({ChannelState.WAIT_CONFIG}),
        )
        assert BLUEDROID_CREATE_CHANNEL_DOS.check(context)

    def test_needs_a_half_created_channel(self):
        context = _context(
            self._trigger_packet(), state=ChannelState.WAIT_CREATE, job=Job.CREATION
        )
        assert not BLUEDROID_CREATE_CHANNEL_DOS.check(context)

    def test_needs_bogus_controller(self):
        context = _context(
            self._trigger_packet(cont_id=0),
            live_states=frozenset({ChannelState.WAIT_CONFIG}),
        )
        assert not BLUEDROID_CREATE_CHANNEL_DOS.check(context)

    def test_needs_aligned_scid(self):
        context = _context(
            self._trigger_packet(scid=0x0041),
            live_states=frozenset({ChannelState.WAIT_CONFIG}),
        )
        assert not BLUEDROID_CREATE_CHANNEL_DOS.check(context)


class TestRtkitPsmShutdown:
    """D5: abnormal-PSM crash, silent death."""

    def test_fires_on_odd_msb_psm(self):
        packet = connection_request(psm=0x0300, scid=0x40)
        assert RTKIT_PSM_SHUTDOWN.check(_context(packet, job=Job.CLOSED))

    def test_even_abnormal_psm_does_not_fire(self):
        packet = connection_request(psm=0x0044, scid=0x40)
        assert not RTKIT_PSM_SHUTDOWN.check(_context(packet))

    def test_valid_psm_does_not_fire(self):
        packet = connection_request(psm=0x0001, scid=0x40)
        assert not RTKIT_PSM_SHUTDOWN.check(_context(packet))

    def test_create_channel_also_vulnerable(self):
        packet = create_channel_request(psm=0x0500, scid=0x40)
        assert RTKIT_PSM_SHUTDOWN.check(_context(packet))

    def test_crash_is_silent(self):
        packet = connection_request(psm=0x0300, scid=0x40)
        crash = RTKIT_PSM_SHUTDOWN.fire(_context(packet), sim_time=40.0)
        assert crash.silent
        assert not crash.leaves_dump


class TestBluezGpf:
    """D8: rare general protection fault (2h40m-class discovery time)."""

    def _aligned_dcid(self):
        for dcid in range(0x0040, 0x10000):
            if (dcid * 0x9E37) % 0xFFFF < 22:
                return dcid
        pytest.fail("no aligned dcid found")

    def test_fires_only_in_narrow_window(self):
        dcid = self._aligned_dcid()
        packet = disconnection_request(dcid=dcid, scid=0x9999)
        packet.garbage = b"\x00"
        assert BLUEZ_GPF.check(_context(packet))

    def test_unaligned_dcid_does_not_fire(self):
        packet = disconnection_request(dcid=0x0041, scid=0x9999)
        packet.garbage = b"\x00"
        if (0x0041 * 0x9E37) % 0xFFFF < 22:
            pytest.skip("0x41 happens to be aligned")
        assert not BLUEZ_GPF.check(_context(packet))

    def test_requires_both_cids_unallocated(self):
        dcid = self._aligned_dcid()
        packet = disconnection_request(dcid=dcid, scid=0x9999)
        packet.garbage = b"\x00"
        context = _context(packet, allocated=frozenset({dcid}))
        assert not BLUEZ_GPF.check(context)

    def test_window_is_rare(self):
        hits = sum(
            1 for dcid in range(0x0040, 0x10000) if (dcid * 0x9E37) % 0xFFFF < 22
        )
        assert hits < 0x10000 / 2000  # rarer than 1 in 2000


class TestRegistry:
    def test_four_bug_models_registered(self):
        assert len(KNOWN_VULNERABILITIES) == 4

    def test_ids_match_keys(self):
        for key, model in KNOWN_VULNERABILITIES.items():
            assert key == model.vulnerability_id
