"""Tests for move and disconnection flows, plus crash triggering."""

from __future__ import annotations

import pytest

from repro.errors import TargetCrashedError
from repro.l2cap.constants import CommandCode, MoveResult, Psm, RejectReason
from repro.l2cap.packets import (
    L2capPacket,
    configuration_request,
    configuration_response,
    disconnection_request,
    move_channel_request,
)
from repro.l2cap.states import ChannelState
from repro.stack.vendors import RTKIT
from repro.stack.vulnerabilities import BLUEDROID_CIDP_NULL_DEREF

from tests.stack.engine_helpers import make_engine, open_channel


def _open(engine, psm=Psm.SDP, scid=0x0060):
    target_cid, _ = open_channel(engine, psm=psm, scid=scid)
    responses = engine.handle_l2cap(configuration_request(dcid=target_cid))
    their_req = next(
        r for r in responses if r.code == CommandCode.CONFIGURATION_REQ
    )
    engine.handle_l2cap(
        configuration_response(scid=target_cid, identifier=their_req.identifier)
    )
    assert engine.channels.get(target_cid).state is ChannelState.OPEN
    return target_cid


class TestMoveFlow:
    def test_move_from_open_succeeds(self):
        engine = make_engine()
        target_cid = _open(engine)
        responses = engine.handle_l2cap(move_channel_request(icid=target_cid))
        assert responses[0].code == CommandCode.MOVE_CHANNEL_RSP
        assert responses[0].fields["result"] == MoveResult.SUCCESS
        block = engine.channels.get(target_cid)
        assert block.state is ChannelState.WAIT_MOVE_CONFIRM
        assert ChannelState.WAIT_MOVE in engine.visited_states()

    def test_move_confirmation_completes(self):
        engine = make_engine()
        target_cid = _open(engine)
        engine.handle_l2cap(move_channel_request(icid=target_cid))
        responses = engine.handle_l2cap(
            L2capPacket(
                CommandCode.MOVE_CHANNEL_CONFIRMATION_REQ,
                2,
                {"icid": target_cid, "result": 0},
            )
        )
        assert responses[0].code == CommandCode.MOVE_CHANNEL_CONFIRMATION_RSP
        assert engine.channels.get(target_cid).state is ChannelState.OPEN

    def test_move_refused_without_amp(self):
        engine = make_engine(RTKIT)
        target_cid = _open(engine)
        responses = engine.handle_l2cap(move_channel_request(icid=target_cid))
        assert responses[0].fields["result"] == MoveResult.REFUSED_NOT_ALLOWED

    def test_move_unknown_icid_rejected(self):
        engine = make_engine()
        responses = engine.handle_l2cap(move_channel_request(icid=0x0999))
        assert responses[0].code == CommandCode.COMMAND_REJECT
        assert responses[0].fields["reason"] == RejectReason.INVALID_CID

    def test_move_before_open_refused_collision(self):
        engine = make_engine()
        target_cid, _ = open_channel(engine)
        responses = engine.handle_l2cap(move_channel_request(icid=target_cid))
        assert responses[0].fields["result"] == MoveResult.REFUSED_COLLISION


class TestDisconnection:
    def test_valid_disconnect_releases_channel(self):
        engine = make_engine()
        target_cid = _open(engine)
        responses = engine.handle_l2cap(
            disconnection_request(dcid=target_cid, scid=0x0060)
        )
        assert responses[0].code == CommandCode.DISCONNECTION_RSP
        assert engine.channels.get(target_cid) is None

    def test_disconnect_unknown_cid_rejected(self):
        engine = make_engine()
        responses = engine.handle_l2cap(
            disconnection_request(dcid=0x0999, scid=0x0888)
        )
        assert responses[0].fields["reason"] == RejectReason.INVALID_CID

    def test_disconnect_mismatched_scid_rejected(self):
        engine = make_engine()
        target_cid = _open(engine)
        responses = engine.handle_l2cap(
            disconnection_request(dcid=target_cid, scid=0x7777)
        )
        assert responses[0].code == CommandCode.COMMAND_REJECT

    def test_unsolicited_disconnection_rsp_swallowed_by_bluedroid(self):
        engine = make_engine()
        responses = engine.handle_l2cap(
            L2capPacket(CommandCode.DISCONNECTION_RSP, 1, {"dcid": 1, "scid": 2})
        )
        assert responses == []


class TestCrashTriggering:
    def _armed_engine(self, armed=True):
        return make_engine(
            vulnerabilities=(BLUEDROID_CIDP_NULL_DEREF,), armed=armed
        )

    def _trigger(self, engine):
        """Mutated config req while a channel is mid-configuration."""
        open_channel(engine)  # park a channel in WAIT_CONFIG
        packet = configuration_request(dcid=0x0999)
        packet.garbage = b"\xd2\x3a\x91\x0e"
        return engine.handle_l2cap(packet)

    def test_armed_engine_crashes(self):
        engine = self._armed_engine()
        with pytest.raises(TargetCrashedError) as excinfo:
            self._trigger(engine)
        assert excinfo.value.crash.vulnerability_id == "bluedroid-cidp-null-deref"
        assert engine.crash is not None

    def test_disarmed_engine_survives(self):
        engine = self._armed_engine(armed=False)
        responses = self._trigger(engine)
        assert responses  # answered normally
        assert engine.crash is None

    def test_crashed_engine_goes_silent(self):
        engine = self._armed_engine()
        with pytest.raises(TargetCrashedError):
            self._trigger(engine)
        from repro.l2cap.packets import echo_request

        assert engine.handle_l2cap(echo_request()) == []

    def test_reset_restores_service(self):
        engine = self._armed_engine()
        with pytest.raises(TargetCrashedError):
            self._trigger(engine)
        engine.reset()
        assert engine.crash is None
        assert len(engine.channels) == 0
