"""Tests for crash artefacts (paper Fig. 12)."""

from __future__ import annotations

from repro.errors import (
    ConnectionFailedError,
    ConnectionResetTargetError,
    TargetTimeoutError,
)
from repro.stack.crash import CrashKind, CrashReport, DumpKind


def _report(**overrides):
    defaults = dict(
        vulnerability_id="bluedroid-cidp-null-deref",
        kind=CrashKind.DOS,
        dump_kind=DumpKind.TOMBSTONE,
        summary="null pointer dereference",
        function="l2c_csm_execute(t_l2c_ccb*, unsigned short, void*)",
        fault_address=0x20,
        trigger_description="CONFIGURATION_REQ(dcid=0x0040)",
        sim_time=85.0,
    )
    defaults.update(overrides)
    return CrashReport(**defaults)


class TestErrorMapping:
    def test_dos_maps_to_connection_failed(self):
        assert _report().transport_error is ConnectionFailedError

    def test_crash_maps_to_connection_reset(self):
        report = _report(kind=CrashKind.CRASH)
        assert report.transport_error is ConnectionResetTargetError

    def test_silent_crash_maps_to_timeout(self):
        report = _report(kind=CrashKind.CRASH, silent=True)
        assert report.transport_error is TargetTimeoutError


class TestDumps:
    def test_tombstone_mirrors_figure12(self):
        dump = _report().render_dump(build="google/blueline/blueline:11")
        assert "signal 11 (SIGSEGV)" in dump
        assert "fault addr 0x20" in dump
        assert "null pointer dereference" in dump
        assert "l2c_csm_execute" in dump
        assert "com.android.bluetooth" in dump
        assert "google/blueline/blueline:11" in dump

    def test_tombstone_records_the_trigger(self):
        dump = _report().render_dump()
        assert "CONFIGURATION_REQ(dcid=0x0040)" in dump

    def test_kernel_oops_for_bluez(self):
        report = _report(
            kind=CrashKind.CRASH,
            dump_kind=DumpKind.KERNEL_OOPS,
            summary="general protection fault",
            function="l2cap_disconnect_req",
        )
        dump = report.render_dump(device_name="gram")
        assert "general protection fault" in dump
        assert "l2cap_disconnect_req" in dump
        assert "gram kernel:" in dump

    def test_silent_devices_leave_no_dump(self):
        report = _report(dump_kind=DumpKind.NONE)
        assert not report.leaves_dump
        assert report.render_dump() == ""

    def test_tombstone_and_oops_leave_dumps(self):
        assert _report().leaves_dump
        assert _report(dump_kind=DumpKind.KERNEL_OOPS).leaves_dump
