"""Tests for VirtualDevice: identity, link glue, crash artefacts."""

from __future__ import annotations

import pytest

from repro.errors import ConnectionFailedError
from repro.hci.packets import AclPacket
from repro.l2cap.constants import CommandCode, Psm
from repro.l2cap.packets import (
    L2capPacket,
    configuration_request,
    connection_request,
    echo_request,
)
from repro.stack.device import DeviceMeta
from repro.stack.vulnerabilities import BLUEDROID_CIDP_NULL_DEREF

from tests.conftest import make_rig


class TestDeviceMeta:
    def test_oui_is_first_three_octets(self):
        meta = DeviceMeta("f8:0f:f9:00:00:02", "pixel", "smartphone")
        assert meta.oui == "F8:0F:F9"

    def test_malformed_mac_rejected(self):
        with pytest.raises(ValueError):
            DeviceMeta("not-a-mac", "x", "y")


class TestDiscovery:
    def test_inquiry_returns_meta(self):
        device, _, _ = make_rig()
        meta = device.inquiry()
        assert meta.name == "test-device"
        assert meta.device_class == "smartphone"

    def test_sdp_browse_lists_services(self):
        device, _, _ = make_rig()
        names = [record.name for record in device.sdp_browse()]
        assert "SDP" in names


class TestLinkGlue:
    def _send(self, queue, packet):
        return queue.exchange(packet)

    def test_echo_through_full_stack(self):
        _, _, queue = make_rig()
        responses = self._send(queue, echo_request(b"ping", identifier=5))
        assert len(responses) == 1
        assert responses[0].code == CommandCode.ECHO_RSP
        assert responses[0].identifier == 5

    def test_undecodable_noise_is_dropped(self):
        device, link, _ = make_rig()
        assert device.handle_acl_frame(b"\x99\x00") == []

    def test_responses_are_acl_framed(self):
        device, _, _ = make_rig()
        frame = AclPacket(handle=0x0B, payload=echo_request(b"x").encode()).encode()
        responses = device.handle_acl_frame(frame)
        acl = AclPacket.decode(responses[0])
        assert acl.handle == 0x0B
        packet = L2capPacket.decode(acl.payload)
        assert packet.code == CommandCode.ECHO_RSP


class TestCrashLifecycle:
    def _crash_rig(self):
        device, link, queue = make_rig(
            vulnerabilities=(BLUEDROID_CIDP_NULL_DEREF,), armed=True
        )
        queue.exchange(connection_request(psm=Psm.SDP, scid=0x60))
        packet = configuration_request(dcid=0x0999)
        packet.garbage = b"\xff"
        return device, link, queue, packet

    def test_crash_records_tombstone(self):
        device, link, queue, trigger = self._crash_rig()
        with pytest.raises(ConnectionFailedError):
            queue.send(trigger)
        assert device.crash is not None
        assert not device.is_alive
        assert len(device.crash_dumps) == 1
        assert "null pointer dereference" in device.crash_dumps[0]

    def test_link_down_after_crash(self):
        device, link, queue, trigger = self._crash_rig()
        with pytest.raises(ConnectionFailedError):
            queue.send(trigger)
        with pytest.raises(ConnectionFailedError):
            queue.send(echo_request())

    def test_reset_restores_device_and_link(self):
        device, link, queue, trigger = self._crash_rig()
        with pytest.raises(ConnectionFailedError):
            queue.send(trigger)
        device.reset(link)
        assert device.is_alive
        assert device.reset_count == 1
        responses = queue.exchange(echo_request(b"back"))
        assert responses[0].code == CommandCode.ECHO_RSP

    def test_disarmed_device_survives_trigger(self):
        device, link, queue = make_rig(
            vulnerabilities=(BLUEDROID_CIDP_NULL_DEREF,), armed=False
        )
        queue.exchange(connection_request(psm=Psm.SDP, scid=0x60))
        packet = configuration_request(dcid=0x0999)
        packet.garbage = b"\xff"
        queue.exchange(packet)
        assert device.is_alive
