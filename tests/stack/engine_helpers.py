"""Helpers for driving a HostStackEngine directly in tests."""

from __future__ import annotations

from repro.hci.transport import SimClock
from repro.l2cap.constants import CommandCode, ConnectionResult, Psm
from repro.l2cap.packets import connection_request
from repro.stack.engine import HostStackEngine
from repro.stack.services import ServiceDirectory, ServiceRecord
from repro.stack.vendors import BLUEDROID, VendorPersonality


def make_engine(
    personality: VendorPersonality = BLUEDROID,
    vulnerabilities: tuple = (),
    armed: bool = True,
    initiating_sdp: bool = False,
) -> HostStackEngine:
    """Engine with SDP (open) + AVDTP (open, initiating) + RFCOMM (paired)."""
    services = ServiceDirectory(
        [
            ServiceRecord(Psm.SDP, "SDP", initiates_config=initiating_sdp),
            ServiceRecord(Psm.AVDTP, "AVDTP", initiates_config=True),
            ServiceRecord(Psm.RFCOMM, "RFCOMM", requires_pairing=True),
        ]
    )
    return HostStackEngine(
        personality,
        services,
        clock=SimClock(),
        vulnerabilities=vulnerabilities,
        armed=armed,
    )


def open_channel(engine: HostStackEngine, psm: int = Psm.SDP, scid: int = 0x0060):
    """Connect and return (target_cid, responses)."""
    responses = engine.handle_l2cap(connection_request(psm=psm, scid=scid))
    rsp = next(r for r in responses if r.code == CommandCode.CONNECTION_RSP)
    assert rsp.fields["result"] == ConnectionResult.SUCCESS
    return rsp.fields["dcid"], responses
