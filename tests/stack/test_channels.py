"""Tests for CID allocation and channel control blocks."""

from __future__ import annotations

import pytest

from repro.errors import ChannelError
from repro.l2cap.constants import DYNAMIC_CID_MIN
from repro.l2cap.states import ChannelState
from repro.stack.channels import ChannelControlBlock, ChannelManager


class TestChannelManager:
    def test_allocation_starts_at_dynamic_min(self):
        manager = ChannelManager()
        block = manager.allocate(psm=1, remote_cid=0x50)
        assert block.local_cid == DYNAMIC_CID_MIN

    def test_allocation_is_sequential(self):
        manager = ChannelManager()
        cids = [manager.allocate(1, 0x50 + i).local_cid for i in range(3)]
        assert cids == [0x0040, 0x0041, 0x0042]

    def test_capacity_limit(self):
        manager = ChannelManager(max_channels=2)
        manager.allocate(1, 0x50)
        manager.allocate(1, 0x51)
        with pytest.raises(ChannelError):
            manager.allocate(1, 0x52)

    def test_release_frees_slot(self):
        manager = ChannelManager(max_channels=1)
        block = manager.allocate(1, 0x50)
        manager.release(block.local_cid)
        manager.allocate(1, 0x51)  # no raise

    def test_release_unknown_is_noop(self):
        ChannelManager().release(0x9999)

    def test_lookup_by_local_and_remote(self):
        manager = ChannelManager()
        block = manager.allocate(psm=25, remote_cid=0x77)
        assert manager.get(block.local_cid) is block
        assert manager.by_remote_cid(0x77) is block
        assert manager.by_remote_cid(0x78) is None

    def test_remote_cid_zero_never_matches(self):
        manager = ChannelManager()
        manager.allocate(psm=1, remote_cid=0)
        assert manager.by_remote_cid(0) is None

    def test_allocated_cids_set(self):
        manager = ChannelManager()
        a = manager.allocate(1, 1).local_cid
        b = manager.allocate(1, 2).local_cid
        assert manager.allocated_cids() == frozenset({a, b})

    def test_clear_resets(self):
        manager = ChannelManager()
        manager.allocate(1, 1)
        manager.clear()
        assert len(manager) == 0
        assert manager.allocate(1, 2).local_cid == DYNAMIC_CID_MIN

    def test_zero_capacity_rejected(self):
        with pytest.raises(ChannelError):
            ChannelManager(max_channels=0)


class TestChannelControlBlock:
    def test_defaults(self):
        block = ChannelControlBlock(local_cid=0x40)
        assert block.state is ChannelState.CLOSED
        assert not block.is_open

    def test_reset_config(self):
        block = ChannelControlBlock(local_cid=0x40)
        block.local_config_done = True
        block.remote_config_done = True
        block.local_config_sent = True
        block.reset_config()
        assert not block.local_config_done
        assert not block.remote_config_done
        assert not block.local_config_sent

    def test_is_open_tracks_state(self):
        block = ChannelControlBlock(local_cid=0x40)
        block.state = ChannelState.OPEN
        assert block.is_open
