"""Tests for connection handling in the host-stack engine."""

from __future__ import annotations

import dataclasses

from repro.l2cap.constants import CommandCode, ConnectionResult, Psm, RejectReason
from repro.l2cap.packets import connection_request, create_channel_request
from repro.l2cap.states import ChannelState
from repro.stack.vendors import BLUEDROID, BLUEZ, RTKIT

from tests.stack.engine_helpers import make_engine, open_channel


class TestConnectionRequest:
    def test_open_port_accepts(self):
        engine = make_engine()
        target_cid, responses = open_channel(engine)
        assert target_cid >= 0x0040
        block = engine.channels.get(target_cid)
        assert block.state is ChannelState.WAIT_CONFIG
        assert block.remote_cid == 0x0060

    def test_response_echoes_identifier_and_scid(self):
        engine = make_engine()
        responses = engine.handle_l2cap(
            connection_request(psm=Psm.SDP, scid=0x0070, identifier=42)
        )
        rsp = responses[0]
        assert rsp.identifier == 42
        assert rsp.fields["scid"] == 0x0070

    def test_unknown_psm_refused(self):
        engine = make_engine()
        responses = engine.handle_l2cap(connection_request(psm=0x1001, scid=0x60))
        assert responses[0].fields["result"] == ConnectionResult.REFUSED_PSM_NOT_SUPPORTED

    def test_invalid_psm_refused(self):
        engine = make_engine()
        responses = engine.handle_l2cap(connection_request(psm=0x0100, scid=0x60))
        assert responses[0].fields["result"] == ConnectionResult.REFUSED_PSM_NOT_SUPPORTED

    def test_pairing_required_port_refused_with_security_block(self):
        engine = make_engine()
        responses = engine.handle_l2cap(connection_request(psm=Psm.RFCOMM, scid=0x60))
        assert responses[0].fields["result"] == ConnectionResult.REFUSED_SECURITY_BLOCK

    def test_reserved_scid_refused(self):
        engine = make_engine()
        responses = engine.handle_l2cap(connection_request(psm=Psm.SDP, scid=0x0001))
        assert responses[0].fields["result"] == ConnectionResult.REFUSED_INVALID_SCID

    def test_duplicate_scid_refused(self):
        engine = make_engine()
        open_channel(engine, scid=0x0060)
        responses = engine.handle_l2cap(connection_request(psm=Psm.SDP, scid=0x0060))
        assert (
            responses[0].fields["result"]
            == ConnectionResult.REFUSED_SCID_ALREADY_ALLOCATED
        )

    def test_capacity_exhaustion_refused_no_resources(self):
        personality = dataclasses.replace(BLUEDROID, max_channels=2)
        engine = make_engine(personality)
        open_channel(engine, scid=0x0060)
        open_channel(engine, scid=0x0061)
        responses = engine.handle_l2cap(connection_request(psm=Psm.SDP, scid=0x0062))
        assert responses[0].fields["result"] == ConnectionResult.REFUSED_NO_RESOURCES

    def test_initiating_service_sends_its_config_req(self):
        engine = make_engine()
        target_cid, responses = open_channel(engine, psm=Psm.AVDTP)
        codes = [r.code for r in responses]
        assert codes == [CommandCode.CONNECTION_RSP, CommandCode.CONFIGURATION_REQ]
        config_req = responses[1]
        assert config_req.fields["dcid"] == 0x0060  # aimed at our CID
        block = engine.channels.get(target_cid)
        assert block.state is ChannelState.WAIT_CONFIG_REQ_RSP

    def test_wait_connect_posture_recorded(self):
        engine = make_engine()
        open_channel(engine)
        assert ChannelState.WAIT_CONNECT in engine.visited_states()
        assert ChannelState.WAIT_CONFIG in engine.visited_states()


class TestCreateChannelRequest:
    def test_amp_stack_accepts(self):
        engine = make_engine(BLUEZ)
        responses = engine.handle_l2cap(
            create_channel_request(psm=Psm.SDP, scid=0x60, cont_id=0)
        )
        assert responses[0].code == CommandCode.CREATE_CHANNEL_RSP
        assert responses[0].fields["result"] == ConnectionResult.SUCCESS
        assert ChannelState.WAIT_CREATE in engine.visited_states()

    def test_non_amp_stack_refuses(self):
        engine = make_engine(RTKIT)
        responses = engine.handle_l2cap(
            create_channel_request(psm=Psm.SDP, scid=0x60, cont_id=0)
        )
        assert (
            responses[0].fields["result"]
            == ConnectionResult.REFUSED_CONTROLLER_ID_NOT_SUPPORTED
        )

    def test_bogus_controller_id_refused(self):
        engine = make_engine(BLUEZ)
        responses = engine.handle_l2cap(
            create_channel_request(psm=Psm.SDP, scid=0x60, cont_id=9)
        )
        assert (
            responses[0].fields["result"]
            == ConnectionResult.REFUSED_CONTROLLER_ID_NOT_SUPPORTED
        )

    def test_unsolicited_connection_rsp_rejected_by_strict_stack(self):
        engine = make_engine(BLUEZ)
        from repro.l2cap.packets import L2capPacket

        responses = engine.handle_l2cap(
            L2capPacket(CommandCode.CONNECTION_RSP, 5, {"dcid": 1, "scid": 2})
        )
        assert responses[0].code == CommandCode.COMMAND_REJECT
        assert responses[0].fields["reason"] == RejectReason.COMMAND_NOT_UNDERSTOOD

    def test_unsolicited_connection_rsp_swallowed_by_bluedroid(self):
        """The Android quirk of paper §III.C."""
        engine = make_engine(BLUEDROID)
        from repro.l2cap.packets import L2capPacket

        responses = engine.handle_l2cap(
            L2capPacket(CommandCode.CONNECTION_RSP, 5, {"dcid": 1, "scid": 2})
        )
        assert responses == []
