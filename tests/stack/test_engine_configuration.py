"""Tests for the configuration sub-machine of the engine."""

from __future__ import annotations

from repro.l2cap.constants import (
    CommandCode,
    ConfigResult,
    Psm,
    RejectReason,
)
from repro.l2cap.packets import (
    configuration_request,
    configuration_response,
)
from repro.l2cap.states import ChannelState
from repro.stack.vendors import BLUEZ, RTKIT

from tests.stack.engine_helpers import make_engine, open_channel


class TestPassiveConfiguration:
    """SDP-style service: the target configures only after we do."""

    def test_our_config_req_triggers_rsp_and_their_req(self):
        engine = make_engine()
        target_cid, _ = open_channel(engine)
        responses = engine.handle_l2cap(
            configuration_request(dcid=target_cid, identifier=3)
        )
        codes = [r.code for r in responses]
        assert codes == [CommandCode.CONFIGURATION_RSP, CommandCode.CONFIGURATION_REQ]
        assert responses[0].identifier == 3
        assert responses[0].fields["result"] == ConfigResult.SUCCESS
        block = engine.channels.get(target_cid)
        assert block.state is ChannelState.WAIT_CONFIG_RSP
        assert ChannelState.WAIT_SEND_CONFIG in engine.visited_states()

    def test_full_exchange_reaches_open(self):
        engine = make_engine()
        target_cid, _ = open_channel(engine)
        responses = engine.handle_l2cap(configuration_request(dcid=target_cid))
        their_req = responses[1]
        engine.handle_l2cap(
            configuration_response(scid=target_cid, identifier=their_req.identifier)
        )
        assert engine.channels.get(target_cid).state is ChannelState.OPEN

    def test_reconfiguration_from_open(self):
        engine = make_engine()
        target_cid = self._open(engine)
        responses = engine.handle_l2cap(configuration_request(dcid=target_cid))
        assert responses[0].code == CommandCode.CONFIGURATION_RSP
        block = engine.channels.get(target_cid)
        assert block.state in (
            ChannelState.WAIT_CONFIG_RSP,
            ChannelState.WAIT_CONFIG,
        )

    def _open(self, engine):
        target_cid, _ = open_channel(engine)
        responses = engine.handle_l2cap(configuration_request(dcid=target_cid))
        engine.handle_l2cap(
            configuration_response(
                scid=target_cid, identifier=responses[1].identifier
            )
        )
        assert engine.channels.get(target_cid).state is ChannelState.OPEN
        return target_cid


class TestInitiatingConfiguration:
    """AVDTP-style service: the target configures immediately."""

    def test_connect_parks_in_wait_config_req_rsp(self):
        engine = make_engine()
        target_cid, _ = open_channel(engine, psm=Psm.AVDTP)
        assert (
            engine.channels.get(target_cid).state
            is ChannelState.WAIT_CONFIG_REQ_RSP
        )

    def test_answering_their_req_parks_in_wait_config_req(self):
        engine = make_engine()
        target_cid, responses = open_channel(engine, psm=Psm.AVDTP)
        their_req = responses[1]
        engine.handle_l2cap(
            configuration_response(scid=target_cid, identifier=their_req.identifier)
        )
        assert engine.channels.get(target_cid).state is ChannelState.WAIT_CONFIG_REQ

    def test_pending_rsp_parks_in_wait_ind_final_rsp(self):
        engine = make_engine()
        target_cid, responses = open_channel(engine, psm=Psm.AVDTP)
        their_req = responses[1]
        engine.handle_l2cap(
            configuration_response(
                scid=target_cid,
                result=ConfigResult.PENDING,
                identifier=their_req.identifier,
            )
        )
        assert (
            engine.channels.get(target_cid).state is ChannelState.WAIT_IND_FINAL_RSP
        )

    def test_pending_unsupported_stack_ignores(self):
        engine = make_engine(RTKIT)
        # RTKit has no initiating service here; use passive flow.
        target_cid, _ = open_channel(engine)
        responses = engine.handle_l2cap(configuration_request(dcid=target_cid))
        their_req = responses[1]
        engine.handle_l2cap(
            configuration_response(
                scid=target_cid,
                result=ConfigResult.PENDING,
                identifier=their_req.identifier,
            )
        )
        state = engine.channels.get(target_cid).state
        assert state is not ChannelState.WAIT_IND_FINAL_RSP

    def test_rejected_rsp_makes_target_disconnect(self):
        engine = make_engine()
        target_cid, responses = open_channel(engine, psm=Psm.AVDTP)
        their_req = responses[1]
        out = engine.handle_l2cap(
            configuration_response(
                scid=target_cid,
                result=ConfigResult.REJECTED,
                identifier=their_req.identifier,
            )
        )
        assert [p.code for p in out] == [CommandCode.DISCONNECTION_REQ]
        assert engine.channels.get(target_cid).state is ChannelState.WAIT_DISCONNECT

    def test_rejected_rsp_without_disconnect_policy(self):
        engine = make_engine(RTKIT)
        target_cid, _ = open_channel(engine)
        responses = engine.handle_l2cap(configuration_request(dcid=target_cid))
        their_req = responses[1]
        out = engine.handle_l2cap(
            configuration_response(
                scid=target_cid,
                result=ConfigResult.REJECTED,
                identifier=their_req.identifier,
            )
        )
        assert out == []


class TestConfigRejections:
    def test_unknown_dcid_rejected_invalid_cid_by_strict_stack(self):
        engine = make_engine(BLUEZ)
        responses = engine.handle_l2cap(configuration_request(dcid=0x0999))
        assert responses[0].code == CommandCode.COMMAND_REJECT
        assert responses[0].fields["reason"] == RejectReason.INVALID_CID

    def test_unknown_dcid_accepted_by_bluedroid_quirk(self):
        """The quirk that exposes the D1/D2 bug path."""
        engine = make_engine()
        responses = engine.handle_l2cap(configuration_request(dcid=0x0999))
        assert responses[0].code == CommandCode.CONFIGURATION_RSP

    def test_unsolicited_config_rsp_rejected_by_strict_stack(self):
        engine = make_engine(BLUEZ)
        responses = engine.handle_l2cap(configuration_response(scid=0x0999))
        assert responses[0].code == CommandCode.COMMAND_REJECT
