"""Tests for service records and the SDP-style directory."""

from __future__ import annotations

import pytest

from repro.errors import ServiceError
from repro.l2cap.constants import Psm
from repro.stack.services import ServiceDirectory, ServiceRecord, standard_services


class TestServiceRecord:
    def test_invalid_psm_rejected(self):
        with pytest.raises(ServiceError):
            ServiceRecord(0x0100, "bogus")

    def test_defaults(self):
        record = ServiceRecord(Psm.SDP, "SDP")
        assert not record.requires_pairing
        assert not record.initiates_config


class TestServiceDirectory:
    def test_register_and_lookup(self):
        directory = ServiceDirectory([ServiceRecord(Psm.SDP, "SDP")])
        assert directory.lookup(Psm.SDP).name == "SDP"
        assert directory.lookup(Psm.RFCOMM) is None
        assert directory.supports(Psm.SDP)

    def test_duplicate_psm_rejected(self):
        directory = ServiceDirectory([ServiceRecord(Psm.SDP, "SDP")])
        with pytest.raises(ServiceError):
            directory.register(ServiceRecord(Psm.SDP, "SDP again"))

    def test_records_sorted_by_psm(self):
        directory = ServiceDirectory(
            [
                ServiceRecord(Psm.AVDTP, "AVDTP"),
                ServiceRecord(Psm.SDP, "SDP"),
            ]
        )
        assert [r.psm for r in directory.all_records()] == [Psm.SDP, Psm.AVDTP]

    def test_open_psms_excludes_paired(self):
        directory = ServiceDirectory(
            [
                ServiceRecord(Psm.SDP, "SDP"),
                ServiceRecord(Psm.RFCOMM, "RFCOMM", requires_pairing=True),
            ]
        )
        assert directory.open_psms() == (Psm.SDP,)

    def test_len(self):
        assert len(ServiceDirectory()) == 0


class TestStandardServices:
    def test_sdp_is_always_pairing_free(self):
        directory = standard_services()
        assert not directory.lookup(Psm.SDP).requires_pairing

    def test_most_services_require_pairing(self):
        directory = standard_services()
        assert directory.lookup(Psm.RFCOMM).requires_pairing
        assert directory.lookup(Psm.AVDTP).requires_pairing

    def test_pairing_free_override(self):
        directory = standard_services(pairing_free=(Psm.SDP, Psm.AVDTP))
        assert not directory.lookup(Psm.AVDTP).requires_pairing

    def test_extra_records(self):
        extra = (ServiceRecord(Psm.BNEP, "BNEP"),)
        directory = standard_services(extra=extra)
        assert directory.supports(Psm.BNEP)
