"""Tests for configuration-option negotiation in the engine."""

from __future__ import annotations

from repro.l2cap.constants import CommandCode, ConfigResult, MIN_SIGNALING_MTU
from repro.l2cap.packets import (
    ConfigOption,
    configuration_request,
    encode_options,
    flush_timeout_option,
    mtu_option,
    qos_option,
)
from repro.l2cap.states import ChannelState

from tests.stack.engine_helpers import make_engine, open_channel


def _config_with_options(target_cid, options_bytes):
    packet = configuration_request(dcid=target_cid, identifier=7, options=[])
    packet.tail = options_bytes
    return packet


def _first_rsp_result(responses):
    rsp = next(r for r in responses if r.code == CommandCode.CONFIGURATION_RSP)
    return rsp.fields["result"]


class TestOptionNegotiation:
    def test_reasonable_mtu_accepted(self):
        engine = make_engine()
        target_cid, _ = open_channel(engine)
        responses = engine.handle_l2cap(
            _config_with_options(target_cid, encode_options([mtu_option(0x0400)]))
        )
        assert _first_rsp_result(responses) == ConfigResult.SUCCESS

    def test_tiny_mtu_unacceptable(self):
        engine = make_engine()
        target_cid, _ = open_channel(engine)
        responses = engine.handle_l2cap(
            _config_with_options(
                target_cid, encode_options([mtu_option(MIN_SIGNALING_MTU - 1)])
            )
        )
        assert _first_rsp_result(responses) == ConfigResult.UNACCEPTABLE_PARAMETERS

    def test_unacceptable_mtu_does_not_advance_config(self):
        engine = make_engine()
        target_cid, _ = open_channel(engine)
        engine.handle_l2cap(
            _config_with_options(target_cid, encode_options([mtu_option(8)]))
        )
        block = engine.channels.get(target_cid)
        assert not block.remote_config_done
        assert block.state is ChannelState.WAIT_CONFIG

    def test_unknown_option_rejected(self):
        engine = make_engine()
        target_cid, _ = open_channel(engine)
        unknown = ConfigOption(0x7E, b"\x00")
        responses = engine.handle_l2cap(
            _config_with_options(target_cid, encode_options([unknown]))
        )
        assert _first_rsp_result(responses) == ConfigResult.UNKNOWN_OPTIONS

    def test_hint_option_ignored(self):
        engine = make_engine()
        target_cid, _ = open_channel(engine)
        hint = ConfigOption(0xFE, b"\x00")  # hint bit set: may be skipped
        responses = engine.handle_l2cap(
            _config_with_options(target_cid, encode_options([hint]))
        )
        assert _first_rsp_result(responses) == ConfigResult.SUCCESS

    def test_truncated_options_rejected(self):
        engine = make_engine()
        target_cid, _ = open_channel(engine)
        responses = engine.handle_l2cap(
            _config_with_options(target_cid, b"\x01\x04\x00")  # claims 4 bytes
        )
        assert _first_rsp_result(responses) == ConfigResult.REJECTED

    def test_known_non_mtu_options_accepted(self):
        engine = make_engine()
        target_cid, _ = open_channel(engine)
        options = encode_options([flush_timeout_option(), qos_option()])
        responses = engine.handle_l2cap(_config_with_options(target_cid, options))
        assert _first_rsp_result(responses) == ConfigResult.SUCCESS

    def test_negotiation_retry_succeeds(self):
        engine = make_engine()
        target_cid, _ = open_channel(engine)
        engine.handle_l2cap(
            _config_with_options(target_cid, encode_options([mtu_option(8)]))
        )
        responses = engine.handle_l2cap(
            configuration_request(dcid=target_cid, identifier=8)
        )
        assert _first_rsp_result(responses) == ConfigResult.SUCCESS
        assert engine.channels.get(target_cid).remote_config_done
