"""Property-based robustness tests for the host-stack engine.

A virtual stack must uphold its invariants under *any* packet stream —
random field values, random codes, garbage, length lies — because that
is precisely what fuzzers throw at it.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.l2cap.constants import CommandCode, SIGNALING_CID
from repro.l2cap.packets import COMMAND_SPECS, L2capPacket
from repro.l2cap.states import ACCEPTOR_REACHABLE_STATES
from repro.stack.vendors import BLUEDROID, BLUEZ, IOS_STACK, RTKIT

from tests.stack.engine_helpers import make_engine


@st.composite
def _arbitrary_packet(draw):
    """Any signaling packet: valid layouts, random values, random junk."""
    code = draw(
        st.one_of(
            st.sampled_from(sorted(COMMAND_SPECS)),
            st.integers(min_value=0, max_value=255),
        )
    )
    fields = {}
    spec = None
    try:
        spec = COMMAND_SPECS[CommandCode(code)]
    except ValueError:
        pass
    if spec is not None:
        for field in spec.fields:
            fields[field.name] = draw(
                st.integers(min_value=0, max_value=field.max_value)
            )
    packet = L2capPacket(
        code=code,
        identifier=draw(st.integers(min_value=0, max_value=255)),
        fields=fields,
        tail=draw(st.binary(max_size=16)),
        garbage=draw(st.binary(max_size=16)),
        header_cid=draw(
            st.sampled_from([SIGNALING_CID, SIGNALING_CID, 0x0002, 0x0040, 0x9999])
        ),
    )
    if draw(st.booleans()):
        packet.declared_data_len = draw(st.integers(min_value=0, max_value=64))
    return packet


_streams = st.lists(_arbitrary_packet(), min_size=1, max_size=30)
_personalities = st.sampled_from([BLUEDROID, BLUEZ, IOS_STACK, RTKIT])


class TestEngineInvariants:
    @given(_streams, _personalities)
    @settings(max_examples=150, deadline=None)
    def test_disarmed_engine_never_crashes(self, stream, personality):
        engine = make_engine(personality, armed=False)
        for packet in stream:
            engine.handle_l2cap(packet)
        assert engine.crash is None

    @given(_streams, _personalities)
    @settings(max_examples=100, deadline=None)
    def test_responses_always_encodable_and_decodable(self, stream, personality):
        engine = make_engine(personality, armed=False)
        for packet in stream:
            for response in engine.handle_l2cap(packet):
                assert L2capPacket.decode(response.encode()).code == response.code

    @given(_streams, _personalities)
    @settings(max_examples=100, deadline=None)
    def test_channel_capacity_never_exceeded(self, stream, personality):
        engine = make_engine(personality, armed=False)
        for packet in stream:
            engine.handle_l2cap(packet)
            assert len(engine.channels) <= personality.max_channels

    @given(_streams, _personalities)
    @settings(max_examples=100, deadline=None)
    def test_visited_states_are_acceptor_reachable(self, stream, personality):
        """A passive acceptor can never enter an initiator-only state —
        the structural fact behind the 13-state coverage ceiling."""
        engine = make_engine(personality, armed=False)
        for packet in stream:
            engine.handle_l2cap(packet)
        assert engine.visited_states() <= ACCEPTOR_REACHABLE_STATES

    @given(_streams, _personalities)
    @settings(max_examples=100, deadline=None)
    def test_responses_echo_request_identifier(self, stream, personality):
        """Every direct response carries the identifier of its request
        (device-initiated requests use the engine's own id space)."""
        engine = make_engine(personality, armed=False)
        for packet in stream:
            responses = engine.handle_l2cap(packet)
            direct = [
                r
                for r in responses
                if r.code
                in (
                    CommandCode.COMMAND_REJECT,
                    CommandCode.CONNECTION_RSP,
                    CommandCode.CONFIGURATION_RSP,
                    CommandCode.DISCONNECTION_RSP,
                    CommandCode.ECHO_RSP,
                    CommandCode.INFORMATION_RSP,
                    CommandCode.CREATE_CHANNEL_RSP,
                    CommandCode.MOVE_CHANNEL_RSP,
                    CommandCode.MOVE_CHANNEL_CONFIRMATION_RSP,
                )
            ]
            if direct:
                assert direct[0].identifier == packet.identifier & 0xFF

    @given(_streams)
    @settings(max_examples=100, deadline=None)
    def test_hardened_stack_never_parses_garbage(self, stream):
        """A garbage-tailed signaling packet never reaches a hardened
        stack's handlers: the answer is always a Command Reject."""
        engine = make_engine(IOS_STACK, armed=False)
        for packet in stream:
            if packet.header_cid != SIGNALING_CID or not packet.garbage:
                continue
            responses = engine.handle_l2cap(packet)
            assert len(responses) == 1
            assert responses[0].code == CommandCode.COMMAND_REJECT

    @given(_streams, _personalities)
    @settings(max_examples=75, deadline=None)
    def test_transition_coverage_monotone(self, stream, personality):
        engine = make_engine(personality, armed=False)
        seen = 0
        for packet in stream:
            engine.handle_l2cap(packet)
            current = len(engine.transition_coverage())
            assert current >= seen
            seen = current
