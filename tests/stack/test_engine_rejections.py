"""Tests for the engine's rejection semantics (the paper's reject rules)."""

from __future__ import annotations

import dataclasses

from repro.l2cap.constants import (
    CommandCode,
    InfoResult,
    InfoType,
    RejectReason,
)
from repro.l2cap.packets import (
    L2capPacket,
    echo_request,
    information_request,
)
from repro.stack.vendors import BLUEDROID, BLUEZ, IOS_STACK, WINDOWS_STACK

from tests.stack.engine_helpers import make_engine


class TestStructuralRejects:
    def test_unknown_code_rejected_not_understood(self):
        engine = make_engine()
        responses = engine.handle_l2cap(L2capPacket(code=0x7F))
        assert responses[0].code == CommandCode.COMMAND_REJECT
        assert responses[0].fields["reason"] == RejectReason.COMMAND_NOT_UNDERSTOOD

    def test_length_lie_rejected_not_understood(self):
        engine = make_engine()
        packet = echo_request(b"abcd")
        packet.declared_data_len = 1
        responses = engine.handle_l2cap(packet)
        assert responses[0].fields["reason"] == RejectReason.COMMAND_NOT_UNDERSTOOD

    def test_mtu_exceeded_rejected(self):
        personality = dataclasses.replace(BLUEDROID, signaling_mtu=48)
        engine = make_engine(personality)
        responses = engine.handle_l2cap(echo_request(b"x" * 100))
        assert responses[0].fields["reason"] == RejectReason.SIGNALING_MTU_EXCEEDED

    def test_reject_echoes_identifier(self):
        engine = make_engine()
        responses = engine.handle_l2cap(L2capPacket(code=0x7F, identifier=77))
        assert responses[0].identifier == 77

    def test_command_reject_is_terminal(self):
        engine = make_engine()
        responses = engine.handle_l2cap(
            L2capPacket(CommandCode.COMMAND_REJECT, 1, {"reason": 0})
        )
        assert responses == []


class TestGarbageTolerance:
    def test_permissive_stack_parses_garbage_tail(self):
        """BlueDroid parses the declared region and ignores the tail."""
        engine = make_engine(BLUEDROID)
        packet = echo_request(b"ping")
        packet.garbage = b"\xde\xad\xbe\xef"
        responses = engine.handle_l2cap(packet)
        assert responses[0].code == CommandCode.ECHO_RSP

    def test_hardened_stack_rejects_garbage_tail(self):
        """iOS/Windows-style exception handling (why D4/D6/D7 survive)."""
        for personality in (IOS_STACK, WINDOWS_STACK):
            engine = make_engine(personality)
            packet = echo_request(b"ping")
            packet.garbage = b"\xde\xad"
            responses = engine.handle_l2cap(packet)
            assert responses[0].code == CommandCode.COMMAND_REJECT


class TestConnectionScopedCommands:
    def test_echo_round_trip(self):
        engine = make_engine()
        responses = engine.handle_l2cap(echo_request(b"hello", identifier=9))
        assert responses[0].code == CommandCode.ECHO_RSP
        assert responses[0].identifier == 9
        assert responses[0].tail == b"hello"

    def test_information_request_known_types(self):
        engine = make_engine()
        for info_type in (1, 2, 3):
            responses = engine.handle_l2cap(information_request(info_type))
            rsp = responses[0]
            assert rsp.code == CommandCode.INFORMATION_RSP
            assert rsp.fields["result"] == InfoResult.SUCCESS
            assert rsp.tail  # carries the payload

    def test_information_request_unknown_type_not_supported(self):
        engine = make_engine()
        responses = engine.handle_l2cap(information_request(0x0099))
        assert responses[0].fields["result"] == InfoResult.NOT_SUPPORTED


class TestLeFamily:
    def test_br_edr_only_stack_rejects_le_commands(self):
        engine = make_engine(IOS_STACK)
        packet = L2capPacket(CommandCode.CONNECTION_PARAMETER_UPDATE_REQ, 1)
        responses = engine.handle_l2cap(packet)
        assert responses[0].code == CommandCode.COMMAND_REJECT

    def test_le_capable_stack_answers_param_update(self):
        engine = make_engine(BLUEDROID)
        packet = L2capPacket(CommandCode.CONNECTION_PARAMETER_UPDATE_REQ, 1)
        responses = engine.handle_l2cap(packet)
        assert responses[0].code == CommandCode.CONNECTION_PARAMETER_UPDATE_RSP

    def test_le_credit_connection_refused_on_br_edr_link(self):
        engine = make_engine(BLUEZ)
        packet = L2capPacket(CommandCode.LE_CREDIT_BASED_CONNECTION_REQ, 1)
        responses = engine.handle_l2cap(packet)
        assert responses[0].code == CommandCode.LE_CREDIT_BASED_CONNECTION_RSP
        assert responses[0].fields["result"] != 0

    def test_flow_control_credit_silently_dropped(self):
        engine = make_engine(BLUEDROID)
        packet = L2capPacket(CommandCode.FLOW_CONTROL_CREDIT_IND, 1)
        assert engine.handle_l2cap(packet) == []

    def test_data_frames_never_elicit_signaling(self):
        engine = make_engine()
        packet = L2capPacket(code=0, header_cid=0x0002, tail=b"blob")
        assert engine.handle_l2cap(packet) == []
