"""Tests for the packet queue (Tx/Rx pump with trace capture)."""

from __future__ import annotations

import pytest

from repro.errors import ConnectionFailedError
from repro.l2cap.constants import CommandCode, Psm
from repro.l2cap.packets import connection_request, echo_request
from repro.stack.vulnerabilities import RTKIT_PSM_SHUTDOWN

from tests.conftest import make_rig


class TestPacketQueue:
    def test_exchange_traces_both_directions(self):
        _, _, queue = make_rig()
        responses = queue.exchange(echo_request(b"x"))
        assert len(responses) == 1
        assert queue.sniffer.transmitted_count() == 1
        assert queue.sniffer.received_count() == 1

    def test_identifiers_wrap_1_to_255(self):
        _, _, queue = make_rig()
        first = queue.take_identifier()
        assert first == 1
        for _ in range(253):
            queue.take_identifier()
        assert queue.take_identifier() == 255
        assert queue.take_identifier() == 1

    def test_send_charges_clock(self):
        _, link, queue = make_rig(tx_cost=0.25)
        queue.send(echo_request())
        assert queue.clock.now == pytest.approx(0.25)

    def test_failed_send_still_counted_as_transmitted(self):
        """A packet that kills the target was still transmitted."""
        device, _, queue = make_rig(
            vulnerabilities=(RTKIT_PSM_SHUTDOWN,), armed=True
        )
        trigger = connection_request(psm=0x0300, scid=0x60)
        with pytest.raises(Exception):
            queue.send(trigger)
        assert queue.sniffer.transmitted_count() == 1

    def test_drain_decodes_responses(self):
        _, _, queue = make_rig()
        queue.send(connection_request(psm=Psm.SDP, scid=0x60))
        responses = queue.drain()
        assert responses[0].code == CommandCode.CONNECTION_RSP
        assert queue.drain() == []

    def test_acl_prefix_matches_encode_acl(self):
        import struct

        from repro.hci.packets import encode_acl

        _, _, queue = make_rig()
        wire = echo_request(b"prefix-check").encode()
        fast = queue._acl_prefix + struct.pack("<H", len(wire)) + wire
        assert fast == encode_acl(queue.handle, wire)

    def test_out_of_range_handle_rejected_at_construction(self):
        from repro.core.packet_queue import PacketQueue
        from repro.errors import PacketEncodeError
        from repro.hci.transport import VirtualLink

        with pytest.raises(PacketEncodeError, match="handle"):
            PacketQueue(VirtualLink(), handle=0x1FFF)
