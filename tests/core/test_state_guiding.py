"""Tests for phase 2 — state guiding."""

from __future__ import annotations

import pytest

from repro.core.state_guiding import STATE_PLAN, StateGuide
from repro.core.target_scanning import TargetScanner
from repro.l2cap.jobs import Job
from repro.l2cap.states import (
    ACCEPTOR_REACHABLE_STATES,
    ChannelState,
    INITIATOR_ONLY_STATES,
)
from repro.stack.vendors import RTKIT

from tests.conftest import make_rig


def _guide(device, queue):
    scan = TargetScanner(queue, device.inquiry, device.sdp_browse).scan()
    return StateGuide(queue, scan)


class TestStatePlan:
    def test_plan_is_the_13_acceptor_reachable_states(self):
        assert set(STATE_PLAN) == ACCEPTOR_REACHABLE_STATES
        assert len(STATE_PLAN) == 13

    def test_plan_never_targets_initiator_states(self):
        assert not set(STATE_PLAN) & INITIATOR_ONLY_STATES

    def test_plan_walks_shallow_to_deep(self):
        assert STATE_PLAN[0] is ChannelState.CLOSED
        assert STATE_PLAN.index(ChannelState.WAIT_CONFIG) < STATE_PLAN.index(
            ChannelState.OPEN
        )
        assert STATE_PLAN.index(ChannelState.OPEN) < STATE_PLAN.index(
            ChannelState.WAIT_MOVE
        )


class TestRoutes:
    @pytest.mark.parametrize(
        "state,expected_device_state",
        [
            (ChannelState.WAIT_CONFIG, ChannelState.WAIT_CONFIG),
            (ChannelState.WAIT_CONFIG_RSP, ChannelState.WAIT_CONFIG_RSP),
            (ChannelState.WAIT_CONFIG_REQ, ChannelState.WAIT_CONFIG_REQ),
            (ChannelState.WAIT_CONFIG_REQ_RSP, ChannelState.WAIT_CONFIG_REQ_RSP),
            (ChannelState.WAIT_IND_FINAL_RSP, ChannelState.WAIT_IND_FINAL_RSP),
            (ChannelState.OPEN, ChannelState.OPEN),
            (ChannelState.WAIT_DISCONNECT, ChannelState.WAIT_DISCONNECT),
            (ChannelState.WAIT_MOVE_CONFIRM, ChannelState.WAIT_MOVE_CONFIRM),
        ],
    )
    def test_route_parks_device_in_state(self, state, expected_device_state):
        device, _, queue = make_rig()
        guide = _guide(device, queue)
        guided = guide.enter(state)
        assert guided.channel is not None
        live = device.engine.channels.live_channels()
        assert any(block.state is expected_device_state for block in live)
        guide.leave(guided)

    def test_posture_states_need_no_channel(self):
        device, _, queue = make_rig()
        guide = _guide(device, queue)
        for state in (ChannelState.CLOSED, ChannelState.WAIT_CONNECT):
            guided = guide.enter(state)
            assert guided.channel is None

    def test_wait_create_uses_valid_create_channel(self):
        device, _, queue = make_rig()
        guide = _guide(device, queue)
        guided = guide.enter(ChannelState.WAIT_CREATE)
        assert guided.channel is not None  # BlueDroid supports AMP
        assert ChannelState.WAIT_CREATE in device.engine.visited_states()
        guide.leave(guided)

    def test_wait_create_falls_back_without_amp(self):
        device, _, queue = make_rig(personality=RTKIT)
        guide = _guide(device, queue)
        guided = guide.enter(ChannelState.WAIT_CREATE)
        assert guided.channel is None
        assert guided.job is Job.CREATION

    def test_jobs_match_table1(self):
        device, _, queue = make_rig()
        guide = _guide(device, queue)
        guided = guide.enter(ChannelState.WAIT_CONFIG_RSP)
        assert guided.job is Job.CONFIGURATION
        guide.leave(guided)

    def test_teardown_clears_channels(self):
        device, _, queue = make_rig()
        guide = _guide(device, queue)
        guided = guide.enter(ChannelState.OPEN)
        assert len(device.engine.channels) == 1
        guide.leave(guided)
        assert len(device.engine.channels) == 0
        assert guide.live_channels() == ()

    def test_move_without_amp_falls_back_to_open(self):
        device, _, queue = make_rig(personality=RTKIT)
        guide = _guide(device, queue)
        guided = guide.enter(ChannelState.WAIT_MOVE)
        assert guided.channel is not None
        live = device.engine.channels.live_channels()
        assert live[0].state is ChannelState.OPEN  # move refused, still open
        guide.leave(guided)

    def test_full_plan_walk_covers_13_device_states(self):
        """Ground truth: walking the plan drives the device through every
        acceptor-reachable state (cross-check for the PRETT inference)."""
        device, _, queue = make_rig()
        guide = _guide(device, queue)
        for state in guide.plan():
            guided = guide.enter(state)
            guide.leave(guided)
        visited = device.engine.visited_states()
        assert ACCEPTOR_REACHABLE_STATES <= visited | {ChannelState.CLOSED}
