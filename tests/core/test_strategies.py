"""Unit tests for the exploration strategies."""

from __future__ import annotations

import pytest

from repro.core.config import FuzzConfig
from repro.core.fuzzer import L2Fuzz
from repro.core.state_guiding import STATE_PLAN
from repro.core.strategies import (
    ROUTE_DEPTH,
    STRATEGY_NAMES,
    BreadthFirstStrategy,
    DepthFirstStrategy,
    ExplorationStrategy,
    SequentialStrategy,
    TargetedStrategy,
    bfs_route,
    make_strategy,
)
from repro.l2cap.states import ChannelState

from tests.conftest import make_rig


def _all_strategies():
    return [make_strategy(name) for name in STRATEGY_NAMES]


class TestRegistry:
    def test_all_names_resolve(self):
        for strategy in _all_strategies():
            assert isinstance(strategy, ExplorationStrategy)

    def test_names_round_trip(self):
        for name in STRATEGY_NAMES:
            assert make_strategy(name).name == name

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            make_strategy("depth_breadth_first")

    def test_targeted_accepts_custom_target(self):
        strategy = make_strategy("targeted", target=ChannelState.WAIT_DISCONNECT)
        assert strategy.target is ChannelState.WAIT_DISCONNECT


class TestDeterminism:
    def test_plans_are_deterministic_across_instances(self):
        visits = {ChannelState.CLOSED: 2, ChannelState.OPEN: 1}
        for name in STRATEGY_NAMES:
            first = make_strategy(name).plan(STATE_PLAN, visits)
            second = make_strategy(name).plan(STATE_PLAN, dict(visits))
            assert first == second

    def test_plans_are_permutations_or_subsets_of_base(self):
        for strategy in _all_strategies():
            plan = strategy.plan(STATE_PLAN, {})
            assert set(plan) <= set(STATE_PLAN)
            assert len(plan) == len(set(plan))


class TestSequential:
    def test_plan_is_base_plan_verbatim(self):
        strategy = SequentialStrategy()
        assert strategy.plan(STATE_PLAN, {}) == STATE_PLAN
        assert (
            strategy.plan(STATE_PLAN, {state: 9 for state in STATE_PLAN})
            == STATE_PLAN
        )

    def test_budget_unweighted(self):
        strategy = SequentialStrategy()
        for state in STATE_PLAN:
            assert strategy.packets_per_command(state, 5) == 5


class TestBreadthFirst:
    def test_unvisited_plan_keeps_base_order(self):
        assert BreadthFirstStrategy().plan(STATE_PLAN, {}) == STATE_PLAN

    def test_least_visited_states_come_first(self):
        visits = {state: 1 for state in STATE_PLAN}
        visits[ChannelState.WAIT_MOVE] = 0
        visits[ChannelState.OPEN] = 0
        plan = BreadthFirstStrategy().plan(STATE_PLAN, visits)
        assert set(plan[:2]) == {ChannelState.OPEN, ChannelState.WAIT_MOVE}
        # Ties resolve in base-plan order: OPEN precedes WAIT_MOVE.
        assert plan[0] is ChannelState.OPEN

    def test_every_state_visited_before_any_second_visit(self):
        """The breadth guarantee survives budget-truncated sweeps."""
        strategy = BreadthFirstStrategy()
        visits: dict[ChannelState, int] = {}
        sequence: list[ChannelState] = []
        prefix_lengths = (1, 3, 2, 5, 4, 7, 6, 13, 2, 9)
        for length in prefix_lengths:
            plan = strategy.plan(STATE_PLAN, visits)
            for state in plan[:length]:
                sequence.append(state)
                visits[state] = visits.get(state, 0) + 1
        assert len(sequence) >= 2 * len(STATE_PLAN)
        first_repeat = next(
            index
            for index, state in enumerate(sequence)
            if state in sequence[:index]
        )
        assert set(sequence[:first_repeat]) == set(STATE_PLAN)


class TestDepthFirst:
    def test_deepest_routes_first(self):
        plan = DepthFirstStrategy().plan(STATE_PLAN, {})
        depths = [ROUTE_DEPTH[state] for state in plan]
        assert depths == sorted(depths, reverse=True)
        assert plan[0] in (ChannelState.WAIT_MOVE, ChannelState.WAIT_MOVE_CONFIRM)
        assert plan[-1] in (ChannelState.CLOSED, ChannelState.WAIT_CONNECT)

    def test_plan_is_full_permutation(self):
        plan = DepthFirstStrategy().plan(STATE_PLAN, {})
        assert sorted(plan, key=lambda s: s.value) == sorted(
            STATE_PLAN, key=lambda s: s.value
        )


class TestTargeted:
    def test_plan_is_bfs_route_to_target(self):
        strategy = TargetedStrategy(target=ChannelState.OPEN)
        plan = strategy.plan(STATE_PLAN, {})
        assert plan[0] is ChannelState.CLOSED
        assert plan[-1] is ChannelState.OPEN
        assert len(plan) < len(STATE_PLAN)

    def test_budget_concentrates_on_target(self):
        strategy = TargetedStrategy(target=ChannelState.OPEN, focus_factor=4)
        assert strategy.packets_per_command(ChannelState.OPEN, 5) == 20
        assert strategy.packets_per_command(ChannelState.CLOSED, 5) == 2
        assert strategy.packets_per_command(ChannelState.CLOSED, 1) == 1

    def test_focus_factor_validated(self):
        with pytest.raises(ValueError):
            TargetedStrategy(focus_factor=0)

    def test_every_plan_state_is_routable(self):
        for state in STATE_PLAN:
            route = bfs_route(state)
            assert route[0] is ChannelState.CLOSED
            assert route[-1] is state

    def test_initiator_only_state_unroutable(self):
        with pytest.raises(ValueError, match="no acceptor-side route"):
            bfs_route(ChannelState.WAIT_CONNECT_RSP)

    def test_bfs_route_is_shortest_deterministic(self):
        assert bfs_route(ChannelState.CLOSED) == (ChannelState.CLOSED,)
        assert bfs_route(ChannelState.WAIT_CONFIG) == (
            ChannelState.CLOSED,
            ChannelState.WAIT_CONFIG,
        )
        assert bfs_route(ChannelState.OPEN) == bfs_route(ChannelState.OPEN)


class TestStrategyCampaigns:
    """Full campaigns under each strategy stay deterministic."""

    def _run(self, name, seed=41, budget=600):
        device, link, _ = make_rig(armed=False)
        fuzzer = L2Fuzz(
            link=link,
            inquiry=device.inquiry,
            browse=device.sdp_browse,
            config=FuzzConfig(max_packets=budget, seed=seed),
            strategy=make_strategy(name),
        )
        return fuzzer.run()

    @pytest.mark.parametrize("name", STRATEGY_NAMES)
    def test_campaign_deterministic_under_fixed_seed(self, name):
        first = self._run(name)
        second = self._run(name)
        assert first == second
        assert first.strategy == name

    @pytest.mark.parametrize("name", STRATEGY_NAMES)
    def test_campaign_records_visits(self, name):
        report = self._run(name)
        assert report.state_visits
        assert all(count >= 1 for _, count in report.state_visits)
        # Visits are recorded per successful entry, transitions between
        # consecutive entries: one fewer than total visits.
        total = sum(count for _, count in report.state_visits)
        transitions = sum(count for _, _, count in report.transition_visits)
        assert transitions == total - 1

    def test_targeted_campaign_spends_budget_on_target(self):
        report = self._run("targeted", budget=900)
        visits = dict(
            (name, count) for name, count in report.state_visits
        )
        assert ChannelState.OPEN.value in visits
