"""Unit tests for the persistent fleet runtime's data plane.

The compact binary summary is the worker→orchestrator wire format; if
it drops or distorts a field, fleets silently mis-merge. These tests
pin the codec round trip, the lazy report reconstruction against the
in-process campaign as oracle (per protocol target), and the simulated
makespan's edge cases.
"""

from __future__ import annotations

import pytest

from repro.core.config import FuzzConfig
from repro.core.fleet import simulated_makespan
from repro.core.runtime import (
    CampaignSummary,
    FindingSummary,
    decode_summary,
    encode_summary,
    summarize_session,
)
from repro.testbed.profiles import D1, D2
from repro.testbed.session import FuzzSession

ALL_TARGETS = ("l2cap", "rfcomm", "sdp", "obex")


def _campaign(target: str, armed: bool, budget: int = 900):
    session = FuzzSession(
        profile=D2 if armed else D1,
        config=FuzzConfig(max_packets=budget),
        armed=armed,
        target=target,
    )
    report = session.run()
    return session, report


class TestSummaryCodec:
    @pytest.mark.parametrize("target", ALL_TARGETS)
    def test_round_trip_is_identity(self, target):
        session, report = _campaign(target, armed=False, budget=600)
        summary = summarize_session(session, report)
        assert decode_summary(encode_summary(summary)) == summary

    def test_round_trip_preserves_findings(self):
        session, report = _campaign("l2cap", armed=True, budget=5_000)
        assert report.findings, "armed D2 campaign should crash"
        summary = summarize_session(session, report)
        decoded = decode_summary(encode_summary(summary))
        assert decoded.findings == summary.findings
        assert decoded.findings[0].trigger == report.findings[0].trigger

    def test_unknown_version_rejected(self):
        session, report = _campaign("l2cap", armed=False, budget=300)
        blob = bytearray(encode_summary(summarize_session(session, report)))
        blob[0] = 99
        with pytest.raises(ValueError, match="format version 99"):
            decode_summary(bytes(blob))

    def test_blob_is_compact(self):
        import pickle

        session, report = _campaign("l2cap", armed=False, budget=900)
        summary = summarize_session(session, report)
        blob = encode_summary(summary)
        # The binary codec beats pickling the same information, and a
        # streaming campaign's result stays a small constant-ish blob.
        assert len(blob) < len(pickle.dumps(summary))
        assert len(blob) < 4096


class TestReportReconstruction:
    @pytest.mark.parametrize("target", ALL_TARGETS)
    def test_reconstructed_report_equals_original(self, target):
        session, report = _campaign(target, armed=False, budget=600)
        summary = decode_summary(
            encode_summary(summarize_session(session, report))
        )
        assert summary.to_report() == report

    def test_reconstructed_armed_report_equals_original(self):
        session, report = _campaign("l2cap", armed=True, budget=5_000)
        summary = decode_summary(
            encode_summary(summarize_session(session, report))
        )
        rebuilt = summary.to_report()
        assert rebuilt == report
        assert rebuilt.findings == report.findings
        assert rebuilt.efficiency == report.efficiency
        assert rebuilt.covered_states == report.covered_states


class TestFindingSummary:
    def test_finding_round_trip(self):
        _, report = _campaign("l2cap", armed=True, budget=5_000)
        for finding in report.findings:
            assert FindingSummary.from_finding(finding).to_finding() == finding


class TestSimulatedMakespanEdges:
    def test_empty_durations_is_zero(self):
        assert simulated_makespan([], 1) == 0.0
        assert simulated_makespan([], 7) == 0.0

    def test_more_workers_than_campaigns(self):
        # Each campaign gets its own worker; idle workers change nothing.
        assert simulated_makespan([3.0, 2.0], 5) == 3.0
        assert simulated_makespan([4.0], 100) == 4.0

    def test_tied_durations_fill_evenly(self):
        assert simulated_makespan([2.0, 2.0, 2.0, 2.0], 2) == 4.0
        assert simulated_makespan([1.0] * 6, 3) == 2.0

    def test_tie_breaking_is_deterministic(self):
        # Equal loads: the greedy rule always picks the first least-
        # loaded worker, so repeated evaluation is stable.
        durations = [5.0, 5.0, 1.0, 1.0, 1.0]
        assert simulated_makespan(durations, 2) == simulated_makespan(
            durations, 2
        )
        assert simulated_makespan(durations, 2) == 7.0

    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError, match="workers"):
            simulated_makespan([1.0], 0)
