"""Tests for crash triage: replay and trigger minimisation."""

from __future__ import annotations

import pytest

from repro.core.config import FuzzConfig
from repro.core.triage import (
    minimize_trigger,
    replay,
    sent_packets,
    triage_report,
)
from repro.hci.transport import VirtualLink
from repro.l2cap.constants import CommandCode, Psm
from repro.l2cap.packets import (
    configuration_request,
    connection_request,
    echo_request,
)
from repro.testbed.profiles import D2
from repro.testbed.session import FuzzSession


def _d2_factory():
    device = D2.build(armed=True, zero_latency=True)
    link = VirtualLink(clock=device.clock)
    device.attach_to(link)
    return device, link


def _crashing_sequence():
    """Connect, pad with noise, then the CIDP null-deref trigger."""
    trigger = configuration_request(dcid=0x0999, identifier=9)
    trigger.garbage = b"\xd2\x3a\x91\x0e"
    return [
        echo_request(b"warmup", identifier=1),
        connection_request(psm=Psm.SDP, scid=0x0070, identifier=2),
        echo_request(b"noise-1", identifier=3),
        echo_request(b"noise-2", identifier=4),
        trigger,
        echo_request(b"never-sent", identifier=5),
    ]


class TestReplay:
    def test_crashing_sequence_reproduces(self):
        outcome = replay(_crashing_sequence(), _d2_factory)
        assert outcome.crashed
        assert outcome.trigger_index == 4
        assert outcome.error_message == "Connection Failed"
        assert outcome.crash_id == "bluedroid-cidp-null-deref"

    def test_benign_sequence_survives(self):
        packets = [echo_request(b"x", identifier=i + 1) for i in range(5)]
        outcome = replay(packets, _d2_factory)
        assert not outcome.crashed
        assert outcome.frames_replayed == 5

    def test_campaign_trace_replays(self):
        """The real thing: a saved campaign trace reproduces its finding."""
        session = FuzzSession(D2, FuzzConfig(max_packets=50_000))
        report = session.run()
        assert report.vulnerability_found
        packets = sent_packets(session.fuzzer.sniffer.trace)
        outcome = replay(packets, _d2_factory)
        assert outcome.crashed
        assert outcome.crash_id == "bluedroid-cidp-null-deref"


class TestMinimize:
    def test_minimal_reproducer_is_connect_plus_trigger(self):
        minimal = minimize_trigger(_crashing_sequence(), _d2_factory)
        codes = [packet.code for packet in minimal]
        # The noise echoes fall away; the connection (which parks a
        # channel in the config job) and the trigger must remain.
        assert CommandCode.CONNECTION_REQ in codes
        assert CommandCode.CONFIGURATION_REQ in codes
        assert len(minimal) == 2

    def test_minimal_sequence_still_crashes(self):
        minimal = minimize_trigger(_crashing_sequence(), _d2_factory)
        assert replay(minimal, _d2_factory).crashed

    def test_non_crashing_sequence_rejected(self):
        with pytest.raises(ValueError):
            minimize_trigger([echo_request(b"x")], _d2_factory)

    def test_campaign_trace_minimises_to_a_handful(self):
        session = FuzzSession(D2, FuzzConfig(max_packets=50_000))
        session.run()
        packets = sent_packets(session.fuzzer.sniffer.trace)
        minimal = minimize_trigger(packets, _d2_factory)
        assert len(minimal) <= 4  # from ~200 packets down to the essence
        assert replay(minimal, _d2_factory).crashed

    def test_triage_report_renders(self):
        minimal = minimize_trigger(_crashing_sequence(), _d2_factory)
        outcome = replay(minimal, _d2_factory)
        text = triage_report(minimal, outcome)
        assert "Minimal reproducer" in text
        assert "<== trigger" in text
        assert "bluedroid-cidp-null-deref" in text
