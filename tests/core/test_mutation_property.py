"""Property-based tests for the mutator: Algorithm 1 invariants hold for
every command and every seed."""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.core.config import FuzzConfig
from repro.core.mutation import CoreFieldMutator
from repro.l2cap.constants import MIN_SIGNALING_MTU, is_valid_psm
from repro.l2cap.fields import CIDP_FIELD_NAMES, FieldCategory, categorize_field
from repro.l2cap.packets import COMMAND_SPECS, L2capPacket
from repro.l2cap.validation import is_malformed


_codes = st.sampled_from(sorted(COMMAND_SPECS))
_seeds = st.integers(min_value=0, max_value=2**32 - 1)


def _mutate(code, seed):
    mutator = CoreFieldMutator(
        FuzzConfig(seed=seed), random.Random(seed), signaling_mtu=MIN_SIGNALING_MTU
    )
    return mutator.mutate(code, identifier=1)


class TestMutatorProperties:
    @given(_codes, _seeds)
    @settings(max_examples=300)
    def test_only_mc_fields_deviate_from_defaults(self, code, seed):
        packet = _mutate(code, seed)
        spec = COMMAND_SPECS[code]
        for field in spec.fields:
            category = categorize_field(field.name)
            if category is FieldCategory.MUTABLE_APPLICATION:
                assert packet.fields[field.name] == field.default

    @given(_codes, _seeds)
    @settings(max_examples=300)
    def test_mutated_packets_stay_within_mtu(self, code, seed):
        assert _mutate(code, seed).wire_length <= MIN_SIGNALING_MTU

    @given(_codes, _seeds)
    @settings(max_examples=300)
    def test_mutated_packets_always_decodable(self, code, seed):
        packet = _mutate(code, seed)
        decoded = L2capPacket.decode(packet.encode())
        assert decoded.code == code
        assert decoded.fields == packet.fields

    @given(_codes, _seeds)
    @settings(max_examples=300)
    def test_mutated_packets_always_malformed(self, code, seed):
        assert is_malformed(_mutate(code, seed))

    @given(_codes, _seeds)
    @settings(max_examples=200)
    def test_psm_mutations_never_valid(self, code, seed):
        packet = _mutate(code, seed)
        psm = packet.fields.get("psm")
        if psm is not None:
            assert not is_valid_psm(psm)

    @given(_codes, _seeds)
    @settings(max_examples=200)
    def test_cidp_mutations_in_table4_range(self, code, seed):
        packet = _mutate(code, seed)
        spec = COMMAND_SPECS[code]
        for name in CIDP_FIELD_NAMES & set(packet.fields):
            if spec.field(name).size == 2:
                assert 0x0040 <= packet.fields[name] <= 0xFFFF
