"""Property-based tests for the mutator: Algorithm 1 invariants hold for
every command and every seed — plus fleet-seed derivation and campaign
visit-accounting invariants."""

from __future__ import annotations

import random
from unittest import mock

from hypothesis import given, settings, strategies as st

from repro.core.config import FuzzConfig
from repro.core.fleet import derive_campaign_seed
from repro.core.fuzzer import L2Fuzz
from repro.core.mutation import CoreFieldMutator
from repro.core.state_guiding import StateGuide
from repro.core.strategies import STRATEGY_NAMES, make_strategy
from repro.l2cap.constants import MIN_SIGNALING_MTU, is_valid_psm
from repro.l2cap.fields import CIDP_FIELD_NAMES, FieldCategory, categorize_field
from repro.l2cap.packets import COMMAND_SPECS, L2capPacket
from repro.l2cap.validation import is_malformed

from tests.conftest import make_rig


_codes = st.sampled_from(sorted(COMMAND_SPECS))
_seeds = st.integers(min_value=0, max_value=2**32 - 1)


def _mutate(code, seed):
    mutator = CoreFieldMutator(
        FuzzConfig(seed=seed), random.Random(seed), signaling_mtu=MIN_SIGNALING_MTU
    )
    return mutator.mutate(code, identifier=1)


class TestMutatorProperties:
    @given(_codes, _seeds)
    @settings(max_examples=300)
    def test_only_mc_fields_deviate_from_defaults(self, code, seed):
        packet = _mutate(code, seed)
        spec = COMMAND_SPECS[code]
        for field in spec.fields:
            category = categorize_field(field.name)
            if category is FieldCategory.MUTABLE_APPLICATION:
                assert packet.fields[field.name] == field.default

    @given(_codes, _seeds)
    @settings(max_examples=300)
    def test_mutated_packets_stay_within_mtu(self, code, seed):
        assert _mutate(code, seed).wire_length <= MIN_SIGNALING_MTU

    @given(_codes, _seeds)
    @settings(max_examples=300)
    def test_mutated_packets_always_decodable(self, code, seed):
        packet = _mutate(code, seed)
        decoded = L2capPacket.decode(packet.encode())
        assert decoded.code == code
        assert decoded.fields == packet.fields

    @given(_codes, _seeds)
    @settings(max_examples=300)
    def test_mutated_packets_always_malformed(self, code, seed):
        assert is_malformed(_mutate(code, seed))

    @given(_codes, _seeds)
    @settings(max_examples=200)
    def test_psm_mutations_never_valid(self, code, seed):
        packet = _mutate(code, seed)
        psm = packet.fields.get("psm")
        if psm is not None:
            assert not is_valid_psm(psm)

    @given(_codes, _seeds)
    @settings(max_examples=200)
    def test_cidp_mutations_in_table4_range(self, code, seed):
        packet = _mutate(code, seed)
        spec = COMMAND_SPECS[code]
        for name in CIDP_FIELD_NAMES & set(packet.fields):
            if spec.field(name).size == 2:
                assert 0x0040 <= packet.fields[name] <= 0xFFFF


class TestFleetSeedDerivation:
    """Per-campaign seed derivation invariants for fleet runs."""

    @given(
        st.integers(min_value=0, max_value=2**32 - 1),
        st.integers(min_value=2, max_value=1024),
    )
    @settings(max_examples=50, deadline=None)
    def test_derived_seeds_never_collide(self, fleet_seed, fleet_size):
        seeds = [
            derive_campaign_seed(fleet_seed, index) for index in range(fleet_size)
        ]
        assert len(set(seeds)) == fleet_size

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=100, deadline=None)
    def test_derivation_is_deterministic(self, fleet_seed):
        assert derive_campaign_seed(fleet_seed, 7) == derive_campaign_seed(
            fleet_seed, 7
        )

    @given(
        st.integers(min_value=0, max_value=2**32 - 1),
        st.integers(min_value=0, max_value=1023),
    )
    @settings(max_examples=100, deadline=None)
    def test_derived_seed_in_64bit_range(self, fleet_seed, index):
        seed = derive_campaign_seed(fleet_seed, index)
        assert 0 <= seed < 2**64


class TestVisitAccounting:
    """CampaignReport visit counts always equal the guide's enter calls."""

    @given(
        st.integers(min_value=0, max_value=2**32 - 1),
        st.integers(min_value=100, max_value=600),
        st.sampled_from(STRATEGY_NAMES),
    )
    @settings(max_examples=12, deadline=None)
    def test_state_visits_sum_to_enter_calls(self, seed, budget, strategy_name):
        entered = []

        class CountingGuide(StateGuide):
            def enter(self, state):
                guided = super().enter(state)
                entered.append(state)
                return guided

        device, link, _ = make_rig(armed=False)
        fuzzer = L2Fuzz(
            link=link,
            inquiry=device.inquiry,
            browse=device.sdp_browse,
            config=FuzzConfig(max_packets=budget, seed=seed),
            strategy=make_strategy(strategy_name),
        )
        # The engine reaches StateGuide through the L2CAP target adapter.
        with mock.patch("repro.targets.l2cap.StateGuide", CountingGuide):
            report = fuzzer.run()
        assert sum(count for _, count in report.state_visits) == len(entered)
        # And per-state: the report's counts match the observed entries.
        observed: dict[str, int] = {}
        for state in entered:
            observed[state.value] = observed.get(state.value, 0) + 1
        assert dict(report.state_visits) == observed
