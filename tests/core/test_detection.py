"""Tests for phase 4 — vulnerability detecting."""

from __future__ import annotations

import pytest

from repro.core.detection import (
    Finding,
    VulnerabilityClass,
    VulnerabilityDetector,
    classify_error,
    finding_key,
)
from repro.errors import (
    ConnectionAbortedTargetError,
    ConnectionFailedError,
    ConnectionRefusedTargetError,
    ConnectionResetTargetError,
    TargetTimeoutError,
)
from repro.l2cap.constants import Psm
from repro.l2cap.packets import configuration_request, connection_request
from repro.stack.vulnerabilities import RTKIT_PSM_SHUTDOWN

from tests.conftest import make_rig


class TestErrorClassification:
    """Paper §III.E: Connection Failed ⇒ DoS; everything else ⇒ crash."""

    def test_connection_failed_is_dos(self):
        assert classify_error(ConnectionFailedError()) is VulnerabilityClass.DOS

    @pytest.mark.parametrize(
        "error_cls",
        [
            ConnectionAbortedTargetError,
            ConnectionResetTargetError,
            ConnectionRefusedTargetError,
            TargetTimeoutError,
        ],
    )
    def test_other_errors_are_crashes(self, error_cls):
        assert classify_error(error_cls()) is VulnerabilityClass.CRASH


class TestPingTest:
    def test_alive_target_answers(self):
        _, _, queue = make_rig()
        detector = VulnerabilityDetector(queue)
        assert detector.ping_test()

    def test_dead_target_fails_ping(self):
        _, link, queue = make_rig()
        link.take_down(ConnectionResetTargetError)
        detector = VulnerabilityDetector(queue)
        assert not detector.ping_test()


class TestDumpProbe:
    def test_no_side_channel_means_none(self):
        _, _, queue = make_rig()
        assert VulnerabilityDetector(queue).fetch_crash_dump() is None

    def test_latest_dump_returned(self):
        _, _, queue = make_rig()
        detector = VulnerabilityDetector(queue, dump_probe=lambda: ["old", "new"])
        assert detector.fetch_crash_dump() == "new"

    def test_empty_dump_list_means_none(self):
        _, _, queue = make_rig()
        detector = VulnerabilityDetector(queue, dump_probe=lambda: [])
        assert detector.fetch_crash_dump() is None


class TestDiagnose:
    def test_silent_crash_diagnosed_end_to_end(self):
        """RTKit-style: device dies silently, ping times out."""
        device, _, queue = make_rig(
            vulnerabilities=(RTKIT_PSM_SHUTDOWN,), armed=True
        )
        detector = VulnerabilityDetector(
            queue, dump_probe=lambda: device.crash_dumps
        )
        trigger = connection_request(psm=0x0300, scid=0x60)
        with pytest.raises(TargetTimeoutError) as excinfo:
            queue.send(trigger)
        finding = detector.diagnose(excinfo.value, "CLOSED", trigger.describe())
        assert finding.vulnerability_class is VulnerabilityClass.CRASH
        assert finding.error_message == "Timeout"
        assert finding.ping_failed
        assert finding.crash_dump is None  # RTKit leaves no dump
        assert "CONNECTION_REQ" in finding.trigger

    def test_finding_records_sim_time(self):
        _, link, queue = make_rig(tx_cost=0.5)
        queue.send(configuration_request(dcid=0x40))
        link.take_down(ConnectionFailedError)
        detector = VulnerabilityDetector(queue)
        finding = detector.diagnose(ConnectionFailedError(), "OPEN", "pkt")
        assert finding.sim_time >= 0.5
        assert finding.state == "OPEN"


class TestFindingKey:
    """The one shared dedup key for fleet merge and the finding DB."""

    def test_enum_and_string_classes_agree(self):
        assert finding_key("Google", VulnerabilityClass.DOS, "pkt") == (
            "l2cap",
            "Google",
            "DoS",
            "pkt",
        )
        assert finding_key("Google", "DoS", "pkt") == (
            "l2cap",
            "Google",
            "DoS",
            "pkt",
        )

    def test_key_discriminates_each_component(self):
        base = finding_key("Google", "DoS", "pkt")
        assert finding_key("Apple", "DoS", "pkt") != base
        assert finding_key("Google", "Crash", "pkt") != base
        assert finding_key("Google", "DoS", "other") != base
        assert finding_key("Google", "DoS", "pkt", target="rfcomm") != base

    def test_finding_method_matches_helper(self):
        finding = Finding(
            vulnerability_class=VulnerabilityClass.DOS,
            error_message="Connection Failed",
            state="WAIT_CONFIG",
            trigger="CONFIGURATION_REQ(...)",
            sim_time=1.0,
            ping_failed=True,
        )
        assert finding.key("Google") == finding_key(
            "Google", VulnerabilityClass.DOS, "CONFIGURATION_REQ(...)"
        )
