"""Tests for the structured campaign log."""

from __future__ import annotations

import json

from repro.core.fuzz_log import FuzzLog, LogLevel


class TestFuzzLog:
    def test_append_and_len(self):
        log = FuzzLog()
        log.info(0.0, "scan", "started")
        log.info(1.0, "scan", "done")
        assert len(log) == 2

    def test_levels_filtered(self):
        log = FuzzLog()
        log.info(0.0, "scan", "ok")
        log.vulnerability(1.0, "detection", "DoS found")
        vulns = log.by_level(LogLevel.VULNERABILITY)
        assert len(vulns) == 1
        assert vulns[0].message == "DoS found"

    def test_detail_kwargs_kept(self):
        log = FuzzLog()
        log.info(0.0, "scan", "scanned", open_psms=["0x1"])
        assert log.entries[0].detail == {"open_psms": ["0x1"]}

    def test_jsonl_round_trips(self):
        log = FuzzLog()
        log.info(0.5, "scan", "m1")
        log.vulnerability(1.5, "detection", "m2", state="OPEN")
        lines = log.to_jsonl().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first == {"t": 0.5, "level": "info", "phase": "scan", "message": "m1"}
        second = json.loads(lines[1])
        assert second["detail"] == {"state": "OPEN"}

    def test_as_dict_omits_empty_detail(self):
        log = FuzzLog()
        log.info(0.0, "p", "m")
        assert "detail" not in log.entries[0].as_dict()
