"""Tests for phase 3 — core field mutating (Algorithm 1)."""

from __future__ import annotations

import itertools
import random

from repro.core.config import FuzzConfig
from repro.core.mutation import CoreFieldMutator
from repro.l2cap.constants import CommandCode, SIGNALING_CID, is_valid_psm
from repro.l2cap.fields import is_normal_cidp
from repro.l2cap.validation import is_malformed


def _mutator(seed=0, mtu=672, **config_kwargs):
    config = FuzzConfig(seed=seed, **config_kwargs)
    return CoreFieldMutator(config, random.Random(seed), signaling_mtu=mtu)


class TestAlgorithm1:
    def test_psm_always_abnormal(self):
        mutator = _mutator()
        for _ in range(100):
            packet = mutator.mutate(CommandCode.CONNECTION_REQ, 1)
            assert not is_valid_psm(packet.fields["psm"])

    def test_cidp_always_in_normal_range(self):
        mutator = _mutator()
        for _ in range(100):
            packet = mutator.mutate(CommandCode.CONFIGURATION_REQ, 1)
            assert is_normal_cidp(packet.fields["dcid"])

    def test_one_byte_cont_id_fits(self):
        mutator = _mutator()
        for _ in range(50):
            packet = mutator.mutate(CommandCode.CREATE_CHANNEL_REQ, 1)
            assert 0 <= packet.fields["cont_id"] <= 0xFF

    def test_f_field_never_touched(self):
        mutator = _mutator()
        for code in (CommandCode.ECHO_REQ, CommandCode.CONNECTION_REQ):
            packet = mutator.mutate(code, 1)
            assert packet.header_cid == SIGNALING_CID

    def test_d_fields_stay_consistent(self):
        """Lengths derived, never lied about — D is kept valid."""
        mutator = _mutator()
        packet = mutator.mutate(CommandCode.CONNECTION_REQ, 9)
        assert packet.declared_payload_len is None
        assert packet.declared_data_len is None
        assert packet.identifier == 9

    def test_ma_fields_keep_defaults(self):
        mutator = _mutator()
        packet = mutator.mutate(CommandCode.CONNECTION_RSP, 1)
        assert packet.fields["result"] == 0
        assert packet.fields["status"] == 0

    def test_garbage_always_appended(self):
        mutator = _mutator()
        for code in (CommandCode.ECHO_REQ, CommandCode.CONFIGURATION_REQ):
            for _ in range(20):
                assert mutator.mutate(code, 1).garbage

    def test_garbage_respects_mtu(self):
        mutator = _mutator(mtu=48)
        for _ in range(100):
            packet = mutator.mutate(CommandCode.CREDIT_BASED_CONNECTION_REQ, 1)
            assert packet.wire_length <= 48

    def test_every_mutated_packet_is_malformed(self):
        """The whole point: mutated packets count toward the MP ratio."""
        mutator = _mutator()
        for code in (
            CommandCode.CONNECTION_REQ,
            CommandCode.CONFIGURATION_REQ,
            CommandCode.ECHO_REQ,
            CommandCode.MOVE_CHANNEL_REQ,
        ):
            assert is_malformed(mutator.mutate(code, 1))

    def test_mutation_is_deterministic_per_seed(self):
        a = _mutator(seed=7).mutate(CommandCode.CONNECTION_REQ, 1)
        b = _mutator(seed=7).mutate(CommandCode.CONNECTION_REQ, 1)
        assert a.fields == b.fields
        assert a.garbage == b.garbage

    def test_different_seeds_differ(self):
        a = _mutator(seed=1).mutate(CommandCode.CONNECTION_REQ, 1)
        b = _mutator(seed=2).mutate(CommandCode.CONNECTION_REQ, 1)
        assert a.fields != b.fields or a.garbage != b.garbage


class TestGenerate:
    def test_n_packets_per_command(self):
        mutator = _mutator(packets_per_command=3)
        ids = itertools.count(1)
        packets = list(
            mutator.generate(
                [CommandCode.CONNECTION_REQ, CommandCode.CONNECTION_RSP],
                lambda: next(ids),
            )
        )
        assert len(packets) == 6
        codes = [p.code for p in packets]
        assert codes == sorted(codes)

    def test_per_command_override(self):
        mutator = _mutator()
        ids = itertools.count(1)
        packets = list(
            mutator.generate([CommandCode.ECHO_REQ], lambda: next(ids), per_command=7)
        )
        assert len(packets) == 7

    def test_identifiers_taken_from_callable(self):
        mutator = _mutator(packets_per_command=2)
        ids = iter([10, 20])
        packets = list(
            mutator.generate([CommandCode.ECHO_REQ], lambda: next(ids))
        )
        assert [p.identifier for p in packets] == [10, 20]
