"""Tests for FuzzConfig validation."""

from __future__ import annotations

import pytest

from repro.core.config import FuzzConfig


class TestFuzzConfig:
    def test_defaults_are_sane(self):
        config = FuzzConfig()
        assert config.packets_per_command >= 1
        assert config.max_packets == 100_000
        assert config.stop_on_first_finding

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"packets_per_command": 0},
            {"max_packets": 0},
            {"max_garbage": 0},
            {"ping_every_commands": 0},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FuzzConfig(**kwargs)

    def test_frozen(self):
        config = FuzzConfig()
        with pytest.raises(AttributeError):
            config.seed = 1
