"""Tests for campaign reporting (Table VI rows)."""

from __future__ import annotations

from repro.analysis.metrics import MutationEfficiency
from repro.core.detection import Finding, VulnerabilityClass
from repro.core.report import CampaignReport, format_elapsed
from repro.l2cap.states import ChannelState


def _efficiency():
    return MutationEfficiency(
        transmitted=100, malformed=70, received=80, rejections=26, elapsed_seconds=10.0
    )


def _finding(sim_time=85.0, vclass=VulnerabilityClass.DOS):
    return Finding(
        vulnerability_class=vclass,
        error_message="Connection Failed",
        state="WAIT_CONFIG",
        trigger="CONFIGURATION_REQ(...)",
        sim_time=sim_time,
        ping_failed=True,
    )


def _report(findings=()):
    return CampaignReport(
        target_name="D2 (Pixel 3)",
        findings=tuple(findings),
        elapsed_seconds=120.0,
        packets_sent=1000,
        sweeps_completed=2,
        efficiency=_efficiency(),
        covered_states=frozenset({ChannelState.CLOSED, ChannelState.OPEN}),
    )


class TestFormatElapsed:
    def test_seconds(self):
        assert format_elapsed(40) == "40 s"

    def test_minutes(self):
        assert format_elapsed(92) == "1 m 32 s"

    def test_hours(self):
        assert format_elapsed(2 * 3600 + 40 * 60) == "2 h 40 m"

    def test_negative_clamped(self):
        assert format_elapsed(-5) == "0 s"


class TestTable6Row:
    def test_vulnerable_device_row(self):
        row = _report([_finding()]).as_table6_row()
        assert row == {
            "device": "D2 (Pixel 3)",
            "vuln": "Yes",
            "description": "DoS",
            "elapsed": "1 m 25 s",
            "elapsed_seconds": 85.0,
        }

    def test_clean_device_row(self):
        row = _report().as_table6_row()
        assert row["vuln"] == "No"
        assert row["description"] == "N/A"
        assert row["elapsed"] == "N/A"

    def test_crash_class_reported(self):
        row = _report([_finding(vclass=VulnerabilityClass.CRASH)]).as_table6_row()
        assert row["description"] == "Crash"


class TestSummary:
    def test_summary_mentions_everything(self):
        text = _report([_finding()]).summary()
        assert "D2 (Pixel 3)" in text
        assert "2/19" in text
        assert "70.00%" in text
        assert "Connection Failed" in text

    def test_clean_summary(self):
        assert "No vulnerability detected." in _report().summary()

    def test_first_finding(self):
        report = _report([_finding(10.0), _finding(20.0)])
        assert report.first_finding.sim_time == 10.0
        assert report.vulnerability_found
