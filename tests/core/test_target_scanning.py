"""Tests for phase 1 — target scanning."""

from __future__ import annotations

import pytest

from repro.core.target_scanning import TargetScanner
from repro.errors import ScanError
from repro.l2cap.constants import Psm
from repro.stack.services import ServiceDirectory, ServiceRecord

from tests.conftest import make_rig, make_services


def _scanner(device, queue):
    return TargetScanner(queue, device.inquiry, device.sdp_browse)


class TestScan:
    def test_finds_open_ports(self):
        device, _, queue = make_rig()
        result = _scanner(device, queue).scan()
        assert Psm.SDP in result.open_psms
        assert Psm.AVDTP in result.open_psms
        assert result.primary_psm == Psm.SDP

    def test_detects_pairing_required(self):
        device, _, queue = make_rig()
        result = _scanner(device, queue).scan()
        rfcomm = next(p for p in result.probes if p.psm == Psm.RFCOMM)
        assert rfcomm.requires_pairing
        assert not rfcomm.connectable

    def test_meta_collected(self):
        device, _, queue = make_rig()
        result = _scanner(device, queue).scan()
        assert result.meta.name == "test-device"
        assert result.meta.oui == "AA:BB:CC"

    def test_sdp_fallback_when_all_ports_paired(self):
        """Paper §III.B: fall back to SDP, which never requires pairing."""
        services = ServiceDirectory(
            [
                ServiceRecord(Psm.SDP, "SDP"),
                ServiceRecord(Psm.RFCOMM, "RFCOMM", requires_pairing=True),
            ]
        )
        # Build a device whose browse list hides SDP (worst case).
        device, _, queue = make_rig(services=services)
        scanner = TargetScanner(
            queue,
            device.inquiry,
            lambda: [r for r in device.sdp_browse() if r.psm != Psm.SDP],
        )
        result = scanner.scan()
        assert result.open_psms == (Psm.SDP,)

    def test_no_open_port_raises_on_primary_access(self):
        services = make_services(open_passive=False, open_initiating=False)
        device, _, queue = make_rig(services=services)
        # Device has no SDP either, so even the fallback fails.
        result = _scanner(device, queue).scan()
        assert result.open_psms == ()
        with pytest.raises(ScanError):
            _ = result.primary_psm

    def test_probe_channels_are_torn_down(self):
        device, _, queue = make_rig()
        _scanner(device, queue).scan()
        assert len(device.engine.channels) == 0

    def test_unreachable_device_raises_scan_error(self):
        device, _, queue = make_rig()

        def broken_inquiry():
            raise RuntimeError("no device in range")

        scanner = TargetScanner(queue, broken_inquiry, device.sdp_browse)
        with pytest.raises(ScanError):
            scanner.scan()

    def test_open_psm_with_predicate(self):
        device, _, queue = make_rig()
        result = _scanner(device, queue).scan()
        avdtp = result.open_psm_with(lambda probe: probe.psm == Psm.AVDTP)
        assert avdtp == Psm.AVDTP
        assert result.open_psm_with(lambda probe: probe.psm == 0x9999) is None
