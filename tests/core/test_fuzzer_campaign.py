"""End-to-end campaign tests for the L2Fuzz orchestrator."""

from __future__ import annotations

import pytest

from repro.core.config import FuzzConfig
from repro.core.detection import VulnerabilityClass
from repro.core.fuzz_log import LogLevel
from repro.core.fuzzer import L2Fuzz
from repro.l2cap.states import ChannelState
from repro.stack.vulnerabilities import (
    BLUEDROID_CIDP_NULL_DEREF,
    RTKIT_PSM_SHUTDOWN,
)

from tests.conftest import make_rig


def _fuzzer(device, link, config, **kwargs):
    return L2Fuzz(
        link=link,
        inquiry=device.inquiry,
        browse=device.sdp_browse,
        config=config,
        dump_probe=lambda: device.crash_dumps,
        **kwargs,
    )


class TestCleanCampaign:
    def test_budget_respected(self):
        device, link, _ = make_rig(armed=False)
        fuzzer = _fuzzer(device, link, FuzzConfig(max_packets=500))
        report = fuzzer.run()
        assert 500 <= report.packets_sent <= 520  # small overshoot per batch
        assert not report.vulnerability_found

    def test_max_sweeps_respected(self):
        device, link, _ = make_rig(armed=False)
        fuzzer = _fuzzer(
            device, link, FuzzConfig(max_packets=100_000, max_sweeps=1)
        )
        report = fuzzer.run()
        assert report.sweeps_completed == 1

    def test_campaign_is_deterministic(self):
        reports = []
        for _ in range(2):
            device, link, _ = make_rig(armed=False)
            fuzzer = _fuzzer(device, link, FuzzConfig(max_packets=800, seed=99))
            reports.append(fuzzer.run())
        assert reports[0].packets_sent == reports[1].packets_sent
        assert (
            reports[0].efficiency.mp_ratio == reports[1].efficiency.mp_ratio
        )
        assert reports[0].covered_states == reports[1].covered_states

    def test_campaign_covers_13_states(self):
        device, link, _ = make_rig(armed=False)
        fuzzer = _fuzzer(device, link, FuzzConfig(max_packets=3000))
        report = fuzzer.run()
        assert len(report.covered_states) == 13

    def test_log_records_phases(self):
        device, link, _ = make_rig(armed=False)
        fuzzer = _fuzzer(device, link, FuzzConfig(max_packets=400))
        fuzzer.run()
        phases = {entry.phase for entry in fuzzer.log.entries}
        assert "scan" in phases
        assert "state-guiding" in phases


class TestVulnerableCampaign:
    def test_cidp_bug_found_in_config_state(self):
        device, link, _ = make_rig(
            vulnerabilities=(BLUEDROID_CIDP_NULL_DEREF,), armed=True
        )
        fuzzer = _fuzzer(device, link, FuzzConfig(max_packets=50_000))
        report = fuzzer.run()
        assert report.vulnerability_found
        finding = report.first_finding
        assert finding.vulnerability_class is VulnerabilityClass.DOS
        assert finding.error_message == "Connection Failed"
        assert finding.state == ChannelState.WAIT_CONFIG.value
        assert finding.crash_dump is not None
        assert "null pointer dereference" in finding.crash_dump

    def test_campaign_stops_on_first_finding(self):
        device, link, _ = make_rig(
            vulnerabilities=(BLUEDROID_CIDP_NULL_DEREF,), armed=True
        )
        fuzzer = _fuzzer(device, link, FuzzConfig(max_packets=50_000))
        report = fuzzer.run()
        assert len(report.findings) == 1
        assert report.packets_sent < 2000  # stopped long before the budget

    def test_silent_crash_detected_via_ping(self):
        device, link, _ = make_rig(
            vulnerabilities=(RTKIT_PSM_SHUTDOWN,), armed=True
        )
        fuzzer = _fuzzer(device, link, FuzzConfig(max_packets=50_000))
        report = fuzzer.run()
        finding = report.first_finding
        assert finding is not None
        assert finding.vulnerability_class is VulnerabilityClass.CRASH
        assert finding.error_message == "Timeout"

    def test_finding_logged_as_vulnerability(self):
        device, link, _ = make_rig(
            vulnerabilities=(BLUEDROID_CIDP_NULL_DEREF,), armed=True
        )
        fuzzer = _fuzzer(device, link, FuzzConfig(max_packets=50_000))
        fuzzer.run()
        vulns = fuzzer.log.by_level(LogLevel.VULNERABILITY)
        assert len(vulns) == 1
        assert "DoS" in vulns[0].message


class TestAutoResetExtension:
    """The paper's §V future-work item: long-term fuzzing via resets."""

    def test_campaign_continues_after_reset(self):
        device, link, _ = make_rig(
            vulnerabilities=(BLUEDROID_CIDP_NULL_DEREF,), armed=True
        )
        config = FuzzConfig(max_packets=3000, stop_on_first_finding=False)
        fuzzer = _fuzzer(
            device,
            link,
            config,
            reset_hook=lambda: device.reset(link),
        )
        report = fuzzer.run()
        assert len(report.findings) >= 2  # found it again after reset
        assert device.reset_count >= 2
        assert report.packets_sent >= 3000
