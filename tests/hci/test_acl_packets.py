"""Tests for HCI ACL framing."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import PacketDecodeError, PacketEncodeError
from repro.hci.packets import (
    ACL_HEADER_LEN,
    AclPacket,
    HCI_ACL_DATA_PKT,
    MAX_CONNECTION_HANDLE,
    PB_CONTINUATION,
    PB_FIRST_FLUSHABLE,
)


class TestAclEncoding:
    def test_wire_layout(self):
        packet = AclPacket(handle=0x000B, payload=b"\x01\x02")
        raw = packet.encode()
        assert raw[0] == HCI_ACL_DATA_PKT
        # handle 0x00B | PB=10 << 12 -> 0x200B little-endian
        assert raw[1:3] == (0x200B).to_bytes(2, "little")
        assert raw[3:5] == (2).to_bytes(2, "little")
        assert raw[5:] == b"\x01\x02"

    def test_round_trip(self):
        packet = AclPacket(handle=0x0123, payload=b"hello", pb_flag=PB_CONTINUATION)
        decoded = AclPacket.decode(packet.encode())
        assert decoded == packet

    def test_handle_out_of_range_raises(self):
        with pytest.raises(PacketEncodeError):
            AclPacket(handle=MAX_CONNECTION_HANDLE + 1, payload=b"").encode()

    def test_bad_flags_raise(self):
        with pytest.raises(PacketEncodeError):
            AclPacket(handle=1, payload=b"", pb_flag=7).encode()

    def test_oversized_payload_raises(self):
        with pytest.raises(PacketEncodeError):
            AclPacket(handle=1, payload=b"x" * 70_000).encode()


class TestAclDecoding:
    def test_too_short_raises(self):
        with pytest.raises(PacketDecodeError):
            AclPacket.decode(b"\x02\x0b")

    def test_wrong_type_raises(self):
        raw = AclPacket(handle=1, payload=b"x").encode()
        with pytest.raises(PacketDecodeError):
            AclPacket.decode(b"\x04" + raw[1:])

    def test_length_mismatch_raises(self):
        raw = bytearray(AclPacket(handle=1, payload=b"abcd").encode())
        raw[3] = 9  # lie about the length
        with pytest.raises(PacketDecodeError):
            AclPacket.decode(bytes(raw))

    def test_header_len_constant(self):
        assert ACL_HEADER_LEN == 5


class TestAclProperties:
    @given(
        st.integers(min_value=0, max_value=MAX_CONNECTION_HANDLE),
        st.binary(max_size=256),
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=0, max_value=3),
    )
    @settings(max_examples=200)
    def test_round_trip_property(self, handle, payload, pb, bc):
        packet = AclPacket(handle=handle, payload=payload, pb_flag=pb, bc_flag=bc)
        assert AclPacket.decode(packet.encode()) == packet
