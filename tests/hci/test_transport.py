"""Tests for the virtual link and simulated clock."""

from __future__ import annotations

import random

import pytest

from repro.errors import (
    ConnectionFailedError,
    TargetCrashedError,
    TargetTimeoutError,
)
from repro.hci.packets import AclPacket
from repro.hci.transport import SimClock, VirtualLink
from repro.stack.crash import CrashKind, CrashReport, DumpKind


def _crash(kind=CrashKind.DOS, silent=False):
    return CrashReport(
        vulnerability_id="test",
        kind=kind,
        dump_kind=DumpKind.NONE,
        summary="test crash",
        function="f",
        fault_address=0,
        trigger_description="pkt",
        silent=silent,
    )


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_advance_accumulates(self):
        clock = SimClock()
        clock.advance(1.5)
        clock.advance(0.5)
        assert clock.now == pytest.approx(2.0)

    def test_negative_advance_raises(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1)


class TestVirtualLink:
    def test_echo_through_link(self):
        link = VirtualLink(tx_cost=0.1)
        link.attach(lambda frame: [frame])  # loopback remote
        link.send_frame(b"ping")
        assert link.receive_frame() == b"ping"
        assert link.clock.now == pytest.approx(0.1)

    def test_no_remote_means_timeout(self):
        link = VirtualLink()
        with pytest.raises(TargetTimeoutError):
            link.send_frame(b"x")

    def test_receive_empty_returns_none(self):
        link = VirtualLink()
        link.attach(lambda frame: [])
        assert link.receive_frame() is None

    def test_crash_takes_link_down_with_mapped_error(self):
        def dying_remote(frame):
            raise TargetCrashedError(_crash(CrashKind.DOS))

        link = VirtualLink()
        link.attach(dying_remote)
        with pytest.raises(ConnectionFailedError):
            link.send_frame(b"x")
        assert not link.is_up
        with pytest.raises(ConnectionFailedError):
            link.send_frame(b"y")
        with pytest.raises(ConnectionFailedError):
            link.receive_frame()

    def test_silent_crash_maps_to_timeout(self):
        def dying_remote(frame):
            raise TargetCrashedError(_crash(CrashKind.CRASH, silent=True))

        link = VirtualLink()
        link.attach(dying_remote)
        with pytest.raises(TargetTimeoutError):
            link.send_frame(b"x")

    def test_restore_brings_link_back(self):
        link = VirtualLink()
        link.attach(lambda frame: [frame])
        link.take_down(ConnectionFailedError)
        link.restore()
        link.send_frame(b"ok")
        assert link.receive_frame() == b"ok"

    def test_stats_count_frames(self):
        link = VirtualLink()
        link.attach(lambda frame: [frame, frame])
        link.send_frame(b"a")
        assert link.stats.frames_sent == 1
        assert link.stats.frames_received == 2
        assert link.pending() == 2

    def test_drain_returns_all(self):
        link = VirtualLink()
        link.attach(lambda frame: [b"1", b"2"])
        link.send_frame(b"x")
        assert link.drain() == [b"1", b"2"]
        assert link.pending() == 0

    def test_loss_rate_drops_frames(self):
        link = VirtualLink(loss_rate=1.0, rng=random.Random(0))
        seen = []
        link.attach(lambda frame: seen.append(frame) or [])
        link.send_frame(b"x")
        assert not seen
        assert link.stats.frames_dropped == 1

    def test_invalid_loss_rate_raises(self):
        with pytest.raises(ValueError):
            VirtualLink(loss_rate=1.5)

    def test_send_packet_helper(self):
        link = VirtualLink()
        link.attach(lambda frame: [frame])
        link.send_packet(AclPacket(handle=3, payload=b"zz"))
        received = link.receive_packet()
        assert received.payload == b"zz"
        assert received.handle == 3
