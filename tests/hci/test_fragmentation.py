"""Tests for ACL fragmentation and recombination."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.packet_queue import PacketQueue
from repro.errors import PacketDecodeError
from repro.hci.fragmentation import Reassembler, defragment_stream, fragment
from repro.hci.packets import AclPacket, PB_CONTINUATION, PB_FIRST_FLUSHABLE
from repro.l2cap.constants import CommandCode
from repro.l2cap.packets import connection_request, echo_request

from tests.conftest import make_rig


def _wire(payload_size: int) -> bytes:
    return echo_request(b"\x55" * payload_size).encode()


class TestFragment:
    def test_small_frame_single_fragment(self):
        packets = fragment(b"abcd", handle=0x0B, acl_mtu=16)
        assert len(packets) == 1
        assert packets[0].pb_flag == PB_FIRST_FLUSHABLE

    def test_large_frame_splits_with_continuations(self):
        payload = _wire(40)
        packets = fragment(payload, handle=0x0B, acl_mtu=16)
        assert len(packets) == (len(payload) + 15) // 16
        assert packets[0].pb_flag == PB_FIRST_FLUSHABLE
        assert all(p.pb_flag == PB_CONTINUATION for p in packets[1:])
        assert b"".join(p.payload for p in packets) == payload

    def test_zero_mtu_rejected(self):
        with pytest.raises(ValueError):
            fragment(b"x", handle=1, acl_mtu=0)

    def test_empty_payload(self):
        packets = fragment(b"", handle=1, acl_mtu=8)
        assert len(packets) == 1


class TestReassembler:
    def test_round_trip(self):
        payload = _wire(50)
        reassembler = Reassembler()
        outputs = [
            reassembler.feed(p) for p in fragment(payload, handle=0x0B, acl_mtu=12)
        ]
        frames = [o for o in outputs if o is not None]
        assert frames == [payload]

    def test_interleaved_handles(self):
        a = _wire(30)
        b = _wire(20)
        frags_a = fragment(a, handle=1, acl_mtu=8)
        frags_b = fragment(b, handle=2, acl_mtu=8)
        reassembler = Reassembler()
        outputs = []
        for pair in zip(frags_a, frags_b):
            for packet in pair:
                result = reassembler.feed(packet)
                if result is not None:
                    outputs.append(result)
        for packet in frags_a[len(frags_b):] + frags_b[len(frags_a):]:
            result = reassembler.feed(packet)
            if result is not None:
                outputs.append(result)
        assert sorted(outputs, key=len) == sorted([a, b], key=len)

    def test_orphan_continuation_dropped(self):
        reassembler = Reassembler()
        orphan = AclPacket(handle=1, payload=b"zzz", pb_flag=PB_CONTINUATION)
        assert reassembler.feed(orphan) is None
        assert reassembler.dropped_fragments == 1

    def test_fresh_start_discards_half_frame(self):
        reassembler = Reassembler()
        first = fragment(_wire(60), handle=1, acl_mtu=16)[0]
        reassembler.feed(first)
        complete = _wire(2)
        result = reassembler.feed(AclPacket(handle=1, payload=complete))
        assert result == complete
        assert reassembler.dropped_fragments == 1

    def test_defragment_stream(self):
        payloads = [_wire(5), _wire(45), _wire(0)]
        packets = []
        for payload in payloads:
            packets.extend(fragment(payload, handle=3, acl_mtu=10))
        assert defragment_stream(packets) == payloads

    def test_incomplete_stream_raises(self):
        packets = fragment(_wire(60), handle=1, acl_mtu=16)[:-1]
        with pytest.raises(PacketDecodeError):
            defragment_stream(packets)

    @given(
        st.integers(min_value=0, max_value=120),
        st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=200)
    def test_round_trip_property(self, payload_size, acl_mtu):
        payload = _wire(payload_size)
        assert defragment_stream(fragment(payload, handle=9, acl_mtu=acl_mtu)) == [
            payload
        ]


class TestFragmentedQueue:
    def test_fragmented_exchange_works_end_to_end(self):
        """A queue with a tiny controller buffer still fuzzes correctly."""
        device, link, _ = make_rig()
        queue = PacketQueue(link, acl_mtu=8)
        responses = queue.exchange(echo_request(b"0123456789abcdef"))
        assert responses[0].code == CommandCode.ECHO_RSP
        assert responses[0].tail == b"0123456789abcdef"

    def test_fragmented_connection_flow(self):
        from repro.l2cap.constants import ConnectionResult, Psm

        device, link, _ = make_rig()
        queue = PacketQueue(link, acl_mtu=6)
        responses = queue.exchange(connection_request(psm=Psm.SDP, scid=0x60))
        rsp = next(r for r in responses if r.code == CommandCode.CONNECTION_RSP)
        assert rsp.fields["result"] == ConnectionResult.SUCCESS

    def test_fragments_counted_once_in_the_trace(self):
        """The sniffer counts L2CAP packets, not ACL fragments."""
        device, link, _ = make_rig()
        queue = PacketQueue(link, acl_mtu=4)
        queue.exchange(echo_request(b"a long enough echo payload"))
        assert queue.sniffer.transmitted_count() == 1
        assert link.stats.frames_sent > 1
