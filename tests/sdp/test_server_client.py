"""Tests for the SDP server, client and the over-the-air browse."""

from __future__ import annotations

import pytest

from repro.core.target_scanning import TargetScanner
from repro.errors import ScanError
from repro.l2cap.constants import Psm
from repro.sdp.client import SdpClient
from repro.sdp.constants import (
    AttributeId,
    ErrorCode,
    PduId,
    ServiceClass,
)
from repro.sdp.data_elements import sequence, uint32, uuid16
from repro.sdp.pdu import (
    ErrorResponse,
    SdpPdu,
    ServiceAttributeRequest,
    ServiceAttributeResponse,
    ServiceSearchAttributeRequest,
    ServiceSearchRequest,
    ServiceSearchResponse,
)
from repro.sdp.records import build_records
from repro.sdp.server import SdpServer
from repro.stack.services import ServiceDirectory, ServiceRecord

from tests.conftest import make_rig, make_services


def _server() -> SdpServer:
    return SdpServer(make_services())


class TestRecords:
    def test_one_record_per_service(self):
        records = build_records(make_services())
        assert len(records) == 3
        assert len({r.handle for r in records}) == 3

    def test_record_attributes_carry_psm(self):
        records = build_records(make_services())
        sdp_record = next(r for r in records if r.service.psm == Psm.SDP)
        attrs = sdp_record.attributes()
        assert AttributeId.PROTOCOL_DESCRIPTOR_LIST in attrs
        assert AttributeId.SERVICE_NAME in attrs

    def test_browse_root_matches_everything(self):
        records = build_records(make_services())
        assert all(
            r.matches_uuid(ServiceClass.PUBLIC_BROWSE_ROOT) for r in records
        )


class TestServer:
    def test_service_search_finds_browse_root(self):
        server = _server()
        request = ServiceSearchRequest(
            sequence(uuid16(ServiceClass.PUBLIC_BROWSE_ROOT)), max_record_count=10
        )
        raw = server.handle_request(
            SdpPdu(PduId.SERVICE_SEARCH_REQUEST, 7, request.encode()).encode()
        )
        pdu = SdpPdu.decode(raw)
        assert pdu.pdu_id == PduId.SERVICE_SEARCH_RESPONSE
        assert pdu.transaction_id == 7
        response = ServiceSearchResponse.decode(pdu.parameters)
        assert len(response.handles) == 3

    def test_max_record_count_respected(self):
        server = _server()
        request = ServiceSearchRequest(
            sequence(uuid16(ServiceClass.PUBLIC_BROWSE_ROOT)), max_record_count=1
        )
        raw = server.handle_request(
            SdpPdu(PduId.SERVICE_SEARCH_REQUEST, 1, request.encode()).encode()
        )
        response = ServiceSearchResponse.decode(SdpPdu.decode(raw).parameters)
        assert len(response.handles) == 1

    def test_service_attribute_request(self):
        server = _server()
        handle = server.records[0].handle
        request = ServiceAttributeRequest(
            record_handle=handle,
            max_attribute_bytes=0xFFFF,
            attribute_id_list=sequence(uint32(0x0000FFFF)),
        )
        raw = server.handle_request(
            SdpPdu(PduId.SERVICE_ATTRIBUTE_REQUEST, 2, request.encode()).encode()
        )
        pdu = SdpPdu.decode(raw)
        assert pdu.pdu_id == PduId.SERVICE_ATTRIBUTE_RESPONSE
        response = ServiceAttributeResponse.decode(pdu.parameters)
        assert response.attribute_list.value  # non-empty

    def test_unknown_handle_yields_error(self):
        server = _server()
        request = ServiceAttributeRequest(
            record_handle=0xDEADBEEF,
            max_attribute_bytes=0xFFFF,
            attribute_id_list=sequence(uint32(0x0000FFFF)),
        )
        raw = server.handle_request(
            SdpPdu(PduId.SERVICE_ATTRIBUTE_REQUEST, 3, request.encode()).encode()
        )
        pdu = SdpPdu.decode(raw)
        assert pdu.pdu_id == PduId.ERROR_RESPONSE
        error = ErrorResponse.decode(pdu.parameters)
        assert error.error_code == ErrorCode.INVALID_SERVICE_RECORD_HANDLE

    def test_garbage_request_yields_error(self):
        server = _server()
        raw = server.handle_request(b"\xff\x00")
        pdu = SdpPdu.decode(raw)
        assert pdu.pdu_id == PduId.ERROR_RESPONSE

    def test_broken_syntax_yields_error(self):
        server = _server()
        raw = server.handle_request(
            SdpPdu(PduId.SERVICE_SEARCH_REQUEST, 5, b"\x00").encode()
        )
        pdu = SdpPdu.decode(raw)
        assert pdu.pdu_id == PduId.ERROR_RESPONSE

    def test_unknown_pdu_id_yields_error(self):
        server = _server()
        raw = server.handle_request(SdpPdu(0x7E, 5, b"").encode())
        assert SdpPdu.decode(raw).pdu_id == PduId.ERROR_RESPONSE


class TestOverAirBrowse:
    def test_client_browses_services(self):
        _, _, queue = make_rig()
        services = SdpClient(queue).browse()
        psms = {service.psm for service in services}
        assert psms == {Psm.SDP, Psm.AVDTP, Psm.RFCOMM}
        names = {service.name for service in services}
        assert "AVDTP" in names

    def test_client_channel_is_torn_down(self):
        device, _, queue = make_rig()
        SdpClient(queue).browse()
        assert len(device.engine.channels) == 0

    def test_browse_fails_without_sdp_service(self):
        services = ServiceDirectory(
            [ServiceRecord(Psm.AVDTP, "AVDTP", initiates_config=True)]
        )
        _, _, queue = make_rig(services=services)
        with pytest.raises(ScanError):
            SdpClient(queue).browse()

    def test_scanner_uses_over_air_browse_by_default(self):
        device, _, queue = make_rig()
        scanner = TargetScanner(queue, device.inquiry)  # no browse callable
        result = scanner.scan()
        assert Psm.SDP in result.open_psms
        assert Psm.AVDTP in result.open_psms
        # The RFCOMM port was advertised via SDP and probed as paired.
        rfcomm = next(p for p in result.probes if p.psm == Psm.RFCOMM)
        assert rfcomm.requires_pairing

    def test_over_air_traffic_lands_in_the_trace(self):
        device, _, queue = make_rig()
        TargetScanner(queue, device.inquiry).scan()
        assert queue.sniffer.transmitted_count() > 4
        # Data frames are spec-clean: the browse adds no malformed packets.
        assert queue.sniffer.malformed_count() == 0
