"""Tests for the SDP data-element codec."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import PacketDecodeError
from repro.sdp.data_elements import (
    DataElement,
    ElementType,
    boolean,
    nil,
    sequence,
    text,
    uint,
    uint8,
    uint32,
    uuid16,
)


class TestScalars:
    def test_nil_is_one_byte(self):
        assert nil().encode() == b"\x00"
        assert DataElement.decode(b"\x00").element_type is ElementType.NIL

    def test_uint16_wire_format(self):
        # type 1, size index 1 -> 0x09, big-endian value
        assert uint(0x0019).encode() == b"\x09\x00\x19"

    def test_uint8(self):
        assert uint8(0x7F).encode() == b"\x08\x7f"

    def test_uint32(self):
        assert uint32(0x0001_0000).encode() == b"\x0a\x00\x01\x00\x00"

    def test_uuid16_wire_format(self):
        # type 3, size index 1 -> 0x19
        assert uuid16(0x1101).encode() == b"\x19\x11\x01"

    def test_bool(self):
        assert boolean(True).encode() == b"\x28\x01"
        assert DataElement.decode(b"\x28\x00").value is False

    def test_text_short_form(self):
        raw = text("SDP").encode()
        assert raw == b"\x25\x03SDP"
        assert DataElement.decode(raw).value == "SDP"

    def test_signed_int_round_trip(self):
        element = DataElement(ElementType.SIGNED_INT, -5, 2)
        assert DataElement.decode(element.encode()).value == -5


class TestSequences:
    def test_nested_sequence_round_trip(self):
        element = sequence(uuid16(0x0100), uint(0x0019), sequence(text("x")))
        decoded = DataElement.decode(element.encode())
        assert decoded.element_type is ElementType.SEQUENCE
        assert len(decoded.value) == 3
        assert decoded.value[0].value == 0x0100
        assert decoded.value[2].value[0].value == "x"

    def test_empty_sequence(self):
        decoded = DataElement.decode(sequence().encode())
        assert decoded.value == ()

    def test_long_sequence_uses_u16_length(self):
        element = sequence(*[uint(i) for i in range(200)])
        raw = element.encode()
        assert raw[0] == (ElementType.SEQUENCE << 3) | 6  # u16 length form
        assert DataElement.decode(raw).value[199].value == 199


class TestErrors:
    def test_empty_input_raises(self):
        with pytest.raises(PacketDecodeError):
            DataElement.decode(b"")

    def test_truncated_value_raises(self):
        with pytest.raises(PacketDecodeError):
            DataElement.decode(b"\x09\x00")  # u16 with 1 byte

    def test_trailing_bytes_raise(self):
        with pytest.raises(PacketDecodeError):
            DataElement.decode(uint(1).encode() + b"\x00")

    def test_unknown_type_raises(self):
        with pytest.raises(PacketDecodeError):
            DataElement.decode(bytes([0x1F << 3]))

    def test_nil_with_size_raises(self):
        with pytest.raises(PacketDecodeError):
            DataElement.decode(b"\x01")


def _element_strategy(depth=2):
    scalar = st.one_of(
        st.builds(uint, st.integers(min_value=0, max_value=0xFFFF)),
        st.builds(uint32, st.integers(min_value=0, max_value=0xFFFFFFFF)),
        st.builds(uuid16, st.integers(min_value=0, max_value=0xFFFF)),
        st.builds(text, st.text(max_size=12)),
        st.builds(boolean, st.booleans()),
        st.just(nil()),
    )
    if depth == 0:
        return scalar
    return st.one_of(
        scalar,
        st.lists(_element_strategy(depth - 1), max_size=4).map(
            lambda children: sequence(*children)
        ),
    )


class TestProperties:
    @given(_element_strategy())
    @settings(max_examples=300)
    def test_round_trip(self, element):
        decoded = DataElement.decode(element.encode())
        assert decoded.element_type == element.element_type
        assert self._values_equal(decoded, element)

    @staticmethod
    def _values_equal(a, b):
        if a.element_type is ElementType.SEQUENCE:
            return len(a.value) == len(b.value) and all(
                TestProperties._values_equal(x, y)
                for x, y in zip(a.value, b.value)
            )
        return a.value == b.value

    @given(st.binary(min_size=1, max_size=32))
    @settings(max_examples=300)
    def test_decode_never_crashes(self, raw):
        try:
            DataElement.decode(raw)
        except PacketDecodeError:
            pass
