"""Tests for the L2CAP packet codec (paper Fig. 3 / Fig. 7 framing)."""

from __future__ import annotations

import pytest

from repro.errors import PacketDecodeError, PacketEncodeError
from repro.l2cap.constants import CommandCode, SIGNALING_CID
from repro.l2cap.packets import (
    COMMAND_SPECS,
    ConfigOption,
    L2capPacket,
    command_reject,
    configuration_request,
    connection_request,
    decode_cid_list,
    decode_options,
    default_packet,
    disconnection_request,
    echo_request,
    encode_cid_list,
    encode_options,
    fields_defaults,
    iter_command_codes,
    mtu_option,
    qos_option,
    spec_for,
)


class TestCommandSpecs:
    def test_all_26_commands_have_specs(self):
        assert len(COMMAND_SPECS) == 26

    def test_connection_req_has_psm_and_scid(self):
        spec = COMMAND_SPECS[CommandCode.CONNECTION_REQ]
        assert [f.name for f in spec.fields] == ["psm", "scid"]
        assert spec.fixed_size == 4

    def test_connection_rsp_has_four_fields(self):
        spec = COMMAND_SPECS[CommandCode.CONNECTION_RSP]
        assert [f.name for f in spec.fields] == ["dcid", "scid", "result", "status"]

    def test_create_channel_req_has_controller_id(self):
        spec = COMMAND_SPECS[CommandCode.CREATE_CHANNEL_REQ]
        assert spec.has_field("cont_id")
        assert spec.field("cont_id").size == 1

    def test_unknown_field_lookup_raises(self):
        spec = COMMAND_SPECS[CommandCode.ECHO_REQ]
        with pytest.raises(KeyError):
            spec.field("psm")

    def test_spec_for_unknown_code_is_none(self):
        assert spec_for(0x7F) is None
        assert spec_for(0x00) is None

    def test_iter_command_codes_sorted(self):
        codes = list(iter_command_codes())
        assert codes == sorted(codes)
        assert len(codes) == 26

    def test_fields_defaults(self):
        defaults = fields_defaults(CommandCode.INFORMATION_REQ)
        assert defaults == {"info_type": 0x0002}


class TestEncodeDecodeRoundTrip:
    def test_connection_request_wire_format(self):
        packet = connection_request(psm=0x0001, scid=0x0040, identifier=2)
        raw = packet.encode()
        # P-LEN=8, H-CID=1, CODE=2, ID=2, DATA-LEN=4, PSM=1, SCID=0x40
        assert raw == bytes.fromhex("0800 0100 02 02 0400 0100 4000".replace(" ", ""))

    def test_round_trip_preserves_fields(self):
        packet = connection_request(psm=0x0019, scid=0x0051, identifier=7)
        decoded = L2capPacket.decode(packet.encode())
        assert decoded.code == CommandCode.CONNECTION_REQ
        assert decoded.identifier == 7
        assert decoded.fields == {"psm": 0x0019, "scid": 0x0051}

    def test_garbage_tail_not_counted_in_lengths(self):
        """The Fig. 7 property: lengths describe the un-garbaged packet."""
        packet = configuration_request(dcid=0x8F7B, identifier=6)
        base_len = packet.payload_length
        packet.garbage = bytes.fromhex("D23A910E")
        assert packet.payload_length == base_len
        raw = packet.encode()
        decoded = L2capPacket.decode(raw)
        assert decoded.garbage == bytes.fromhex("D23A910E")
        assert decoded.declared_payload_len is None  # lengths still consistent

    def test_declared_length_override_survives_round_trip(self):
        packet = echo_request(b"AAAA", identifier=1)
        packet.declared_data_len = 2
        decoded = L2capPacket.decode(packet.encode())
        # Two bytes of the payload became the declared region, the rest
        # trailing garbage; the length lie is preserved.
        assert decoded.tail == b"AA"
        assert decoded.garbage == b"AA"

    def test_decode_too_short_raises(self):
        with pytest.raises(PacketDecodeError):
            L2capPacket.decode(b"\x00\x00\x01")

    def test_decode_data_len_beyond_body_raises(self):
        raw = bytes.fromhex("0800010002020400")  # claims 4 data bytes, has 0
        with pytest.raises(PacketDecodeError):
            L2capPacket.decode(raw)

    def test_unknown_code_decodes_with_tail(self):
        raw = bytes.fromhex("060001007F010200BEEF")
        decoded = L2capPacket.decode(raw)
        assert decoded.spec is None
        assert decoded.command_name == "UNKNOWN_0x7F"
        assert decoded.tail == bytes.fromhex("BEEF")

    def test_truncated_fields_partially_decoded(self):
        # CONNECTION_REQ with only 2 of 4 data bytes.
        raw = bytes.fromhex("0600010002010200" + "0100")
        decoded = L2capPacket.decode(raw)
        assert decoded.fields == {"psm": 0x0001}

    def test_field_value_too_large_raises_on_encode(self):
        packet = connection_request(psm=0x10000, scid=0)
        with pytest.raises(PacketEncodeError):
            packet.encode()

    def test_payload_over_l2cap_max_raises(self):
        packet = echo_request(b"x" * 70_000)
        with pytest.raises(PacketEncodeError):
            packet.encode()


class TestPacketHelpers:
    def test_copy_is_independent(self):
        packet = connection_request(psm=1, scid=0x40)
        clone = packet.copy()
        clone.fields["psm"] = 0x19
        assert packet.fields["psm"] == 1

    def test_describe_mentions_command_and_fields(self):
        packet = disconnection_request(dcid=0x40, scid=0x50, identifier=3)
        text = packet.describe()
        assert "DISCONNECTION_REQ" in text
        assert "0x0040" in text

    def test_default_packet_rejects_unknown_field(self):
        with pytest.raises(KeyError):
            default_packet(CommandCode.ECHO_REQ, psm=1)

    def test_default_packet_sets_field(self):
        packet = default_packet(CommandCode.CONNECTION_REQ, psm=0x19)
        assert packet.fields["psm"] == 0x19

    def test_command_reject_carries_reason(self):
        packet = command_reject(reason=0x0002, identifier=9)
        assert packet.fields["reason"] == 0x0002
        assert packet.identifier == 9

    def test_header_cid_defaults_to_signaling(self):
        assert echo_request().header_cid == SIGNALING_CID


class TestConfigOptions:
    def test_mtu_option_round_trip(self):
        raw = encode_options([mtu_option(0x0400)])
        options = decode_options(raw)
        assert len(options) == 1
        assert options[0].option_type == 0x01
        assert options[0].value == (0x0400).to_bytes(2, "little")

    def test_qos_option_has_flags_and_five_params(self):
        option = qos_option()
        assert len(option.value) == 2 + 5 * 4

    def test_truncated_option_raises(self):
        with pytest.raises(PacketDecodeError):
            decode_options(b"\x01\x04\x00")

    def test_oversized_option_value_raises(self):
        with pytest.raises(PacketEncodeError):
            ConfigOption(0x01, b"x" * 300).encode()

    def test_multiple_options_round_trip(self):
        raw = encode_options([mtu_option(100), mtu_option(200)])
        options = decode_options(raw)
        assert len(options) == 2


class TestCidList:
    def test_round_trip(self):
        cids = [0x0040, 0x0041, 0xFFFF]
        assert decode_cid_list(encode_cid_list(cids)) == cids

    def test_odd_length_raises(self):
        with pytest.raises(PacketDecodeError):
            decode_cid_list(b"\x40")

    def test_empty_list(self):
        assert decode_cid_list(b"") == []
