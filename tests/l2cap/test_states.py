"""Tests for the 19-state machine (paper Fig. 2 and Table II)."""

from __future__ import annotations

from repro.l2cap.constants import CommandCode
from repro.l2cap.states import (
    ACCEPTOR_REACHABLE_STATES,
    ACCEPTOR_TRANSITIONS,
    ALL_STATES,
    CHANNEL_ALIVE_STATES,
    CONFIGURATION_STATES,
    ChannelState,
    EventActionRow,
    INITIATOR_ONLY_STATES,
    WAIT_CONNECT_TABLE,
    lookup_transition,
    valid_events,
)


class TestStateInventory:
    def test_there_are_19_states(self):
        assert len(ALL_STATES) == 19

    def test_initiator_only_states_are_6(self):
        assert len(INITIATOR_ONLY_STATES) == 6

    def test_acceptor_reachable_states_are_13(self):
        """The paper's maximum master-side coverage (Fig. 10)."""
        assert len(ACCEPTOR_REACHABLE_STATES) == 13

    def test_partition_is_complete(self):
        assert INITIATOR_ONLY_STATES | ACCEPTOR_REACHABLE_STATES == set(ALL_STATES)
        assert not (INITIATOR_ONLY_STATES & ACCEPTOR_REACHABLE_STATES)

    def test_configuration_cluster_has_8_states(self):
        assert len(CONFIGURATION_STATES) == 8

    def test_closed_is_the_only_dead_state(self):
        assert set(ALL_STATES) - CHANNEL_ALIVE_STATES == {ChannelState.CLOSED}


class TestTransitions:
    def test_closed_accepts_connection_request(self):
        transition = lookup_transition(ChannelState.CLOSED, CommandCode.CONNECTION_REQ)
        assert transition is not None
        assert transition.action == CommandCode.CONNECTION_RSP
        assert transition.next_state is ChannelState.WAIT_CONFIG

    def test_wait_connect_accepts_only_connection_request(self):
        events = {
            t.event for t in ACCEPTOR_TRANSITIONS[ChannelState.WAIT_CONNECT]
        }
        assert events == {CommandCode.CONNECTION_REQ}

    def test_open_accepts_disconnect_and_move(self):
        events = {t.event for t in ACCEPTOR_TRANSITIONS[ChannelState.OPEN]}
        assert CommandCode.DISCONNECTION_REQ in events
        assert CommandCode.MOVE_CHANNEL_REQ in events

    def test_unknown_event_returns_none(self):
        assert lookup_transition(ChannelState.WAIT_CONNECT, CommandCode.ECHO_RSP) is None

    def test_echo_and_info_valid_everywhere(self):
        for state in ACCEPTOR_TRANSITIONS:
            events = valid_events(state)
            assert CommandCode.ECHO_REQ in events
            assert CommandCode.INFORMATION_REQ in events

    def test_disconnect_possible_from_every_config_state_in_table(self):
        for state in CONFIGURATION_STATES & set(ACCEPTOR_TRANSITIONS):
            if state is ChannelState.WAIT_SEND_CONFIG:
                continue  # engine-driven transient
            events = {t.event for t in ACCEPTOR_TRANSITIONS[state]}
            assert CommandCode.DISCONNECTION_REQ in events or state not in (
                ChannelState.WAIT_CONFIG,
            )


class TestTable2:
    def test_table2_has_eleven_rows(self):
        assert len(WAIT_CONNECT_TABLE) == 11

    def test_only_connect_req_transitions(self):
        transitioning = [row for row in WAIT_CONNECT_TABLE if row.transitions_to]
        assert len(transitioning) == 1
        row = transitioning[0]
        assert row.event == CommandCode.CONNECTION_REQ
        assert row.transitions_to is ChannelState.WAIT_CONFIG
        assert row.action == "Connect Rsp"

    def test_everything_else_rejected(self):
        for row in WAIT_CONNECT_TABLE:
            if row.event != CommandCode.CONNECTION_REQ:
                assert row.action == "Reject"
                assert row.transitions_to is None

    def test_rows_are_event_action_rows(self):
        assert all(isinstance(row, EventActionRow) for row in WAIT_CONNECT_TABLE)
