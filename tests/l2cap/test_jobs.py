"""Tests for the job clustering (paper Tables I and III)."""

from __future__ import annotations

import pytest

from repro.l2cap.constants import CommandCode
from repro.l2cap.jobs import (
    ALL_COMMANDS,
    JOB_STATES,
    JOB_VALID_COMMANDS,
    Job,
    STATE_JOB,
    job_of,
    states_of,
    valid_commands_for_state,
)
from repro.l2cap.states import ALL_STATES, ChannelState


class TestTable1Clustering:
    def test_seven_jobs(self):
        assert len(Job) == 7

    def test_every_state_has_exactly_one_job(self):
        assert set(STATE_JOB) == set(ALL_STATES)

    def test_job_sizes_match_table1(self):
        sizes = {job.value: len(states) for job, states in JOB_STATES.items()}
        assert sizes == {
            "Closed": 1,
            "Connection": 2,
            "Creation": 2,
            "Configuration": 8,
            "Disconnection": 1,
            "Move": 4,
            "Open": 1,
        }

    def test_configuration_membership_matches_table1(self):
        assert states_of(Job.CONFIGURATION) == frozenset(
            {
                ChannelState.WAIT_CONFIG,
                ChannelState.WAIT_CONFIG_RSP,
                ChannelState.WAIT_CONFIG_REQ,
                ChannelState.WAIT_CONFIG_REQ_RSP,
                ChannelState.WAIT_SEND_CONFIG,
                ChannelState.WAIT_IND_FINAL_RSP,
                ChannelState.WAIT_FINAL_RSP,
                ChannelState.WAIT_CONTROL_IND,
            }
        )

    def test_move_membership_matches_table1(self):
        assert states_of(Job.MOVE) == frozenset(
            {
                ChannelState.WAIT_MOVE,
                ChannelState.WAIT_MOVE_RSP,
                ChannelState.WAIT_MOVE_CONFIRM,
                ChannelState.WAIT_CONFIRM_RSP,
            }
        )

    @pytest.mark.parametrize(
        "state,job",
        [
            (ChannelState.CLOSED, Job.CLOSED),
            (ChannelState.WAIT_CONNECT, Job.CONNECTION),
            (ChannelState.WAIT_CREATE_RSP, Job.CREATION),
            (ChannelState.WAIT_DISCONNECT, Job.DISCONNECTION),
            (ChannelState.OPEN, Job.OPEN),
        ],
    )
    def test_job_of(self, state, job):
        assert job_of(state) is job


class TestTable3ValidCommands:
    def test_closed_and_open_allow_all_commands(self):
        assert JOB_VALID_COMMANDS[Job.CLOSED] == ALL_COMMANDS
        assert JOB_VALID_COMMANDS[Job.OPEN] == ALL_COMMANDS
        assert len(ALL_COMMANDS) == 26

    def test_connection_job_commands(self):
        assert JOB_VALID_COMMANDS[Job.CONNECTION] == {
            CommandCode.CONNECTION_REQ,
            CommandCode.CONNECTION_RSP,
        }

    def test_creation_job_commands(self):
        assert JOB_VALID_COMMANDS[Job.CREATION] == {
            CommandCode.CREATE_CHANNEL_REQ,
            CommandCode.CREATE_CHANNEL_RSP,
        }

    def test_configuration_job_commands(self):
        assert JOB_VALID_COMMANDS[Job.CONFIGURATION] == {
            CommandCode.CONFIGURATION_REQ,
            CommandCode.CONFIGURATION_RSP,
        }

    def test_move_job_has_four_commands(self):
        assert JOB_VALID_COMMANDS[Job.MOVE] == {
            CommandCode.MOVE_CHANNEL_REQ,
            CommandCode.MOVE_CHANNEL_RSP,
            CommandCode.MOVE_CHANNEL_CONFIRMATION_REQ,
            CommandCode.MOVE_CHANNEL_CONFIRMATION_RSP,
        }

    def test_valid_commands_for_state_goes_through_job(self):
        assert valid_commands_for_state(ChannelState.WAIT_SEND_CONFIG) == {
            CommandCode.CONFIGURATION_REQ,
            CommandCode.CONFIGURATION_RSP,
        }
