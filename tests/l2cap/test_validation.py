"""Tests for spec-conformance validation and malformedness classification."""

from __future__ import annotations

from repro.l2cap.constants import CONNECTIONLESS_CID, CommandCode, RejectReason
from repro.l2cap.packets import (
    L2capPacket,
    configuration_request,
    connection_request,
    echo_request,
)
from repro.l2cap.validation import (
    Violation,
    frame_violations,
    is_malformed,
    reject_reason_for,
    spec_layout_ok,
)


def _validate(packet, mtu=672, cids=frozenset()):
    return frame_violations(packet, signaling_mtu=mtu, allocated_cids=cids)


class TestFrameViolations:
    def test_clean_packet_has_no_violations(self):
        report = _validate(echo_request(b"hi"))
        assert report.clean

    def test_unknown_code(self):
        report = _validate(L2capPacket(code=0x7F))
        assert report.has(Violation.UNKNOWN_CODE)

    def test_garbage_tail_detected(self):
        packet = echo_request()
        packet.garbage = b"\xde\xad"
        assert _validate(packet).has(Violation.GARBAGE_TAIL)

    def test_mtu_exceeded(self):
        packet = echo_request(b"x" * 100)
        assert _validate(packet, mtu=48).has(Violation.MTU_EXCEEDED)

    def test_length_lie_detected(self):
        packet = echo_request(b"abcd")
        packet.declared_payload_len = 2
        assert _validate(packet).has(Violation.LENGTH_MISMATCH)

    def test_truncated_fields_detected(self):
        packet = L2capPacket(CommandCode.CONNECTION_REQ, fields={"psm": 1})
        del packet.fields["scid"]
        assert _validate(packet).has(Violation.TRUNCATED_FIELDS)

    def test_invalid_psm_detected(self):
        packet = connection_request(psm=0x0100, scid=0x0040)
        report = _validate(packet, cids=frozenset({0x0040}))
        assert report.has(Violation.INVALID_PSM)

    def test_unallocated_cid_detected(self):
        packet = configuration_request(dcid=0x1234)
        assert _validate(packet).has(Violation.UNALLOCATED_CID)

    def test_allocated_cid_is_clean(self):
        packet = configuration_request(dcid=0x0040)
        report = _validate(packet, cids=frozenset({0x0040}))
        assert not report.has(Violation.UNALLOCATED_CID)

    def test_controller_id_not_treated_as_channel_endpoint(self):
        packet = L2capPacket(
            CommandCode.CREATE_CHANNEL_REQ,
            fields={"psm": 1, "scid": 0x0040, "cont_id": 0x41},
        )
        report = _validate(packet, cids=frozenset({0x0040}))
        assert not report.has(Violation.UNALLOCATED_CID)


class TestDataFrames:
    def test_connectionless_data_is_clean(self):
        packet = L2capPacket(code=0, header_cid=CONNECTIONLESS_CID, tail=b"blob")
        assert _validate(packet).clean

    def test_data_to_allocated_channel_is_clean(self):
        packet = L2capPacket(code=0, header_cid=0x0040, tail=b"blob")
        assert _validate(packet, cids=frozenset({0x0040})).clean

    def test_data_to_unallocated_channel_is_malformed(self):
        packet = L2capPacket(code=0, header_cid=0x0999, tail=b"blob")
        assert _validate(packet).has(Violation.BAD_HEADER_CID)


class TestRejectReasonMapping:
    """The §III.D reject semantics the taxonomy is designed around."""

    def test_mutated_d_gives_command_not_understood(self):
        packet = echo_request(b"abcd")
        packet.declared_data_len = 1
        reason = reject_reason_for(_validate(packet))
        assert reason == RejectReason.COMMAND_NOT_UNDERSTOOD

    def test_mtu_violation_gives_mtu_exceeded(self):
        packet = echo_request(b"x" * 100)
        reason = reject_reason_for(_validate(packet, mtu=48))
        assert reason == RejectReason.SIGNALING_MTU_EXCEEDED

    def test_bogus_cid_gives_invalid_cid(self):
        packet = configuration_request(dcid=0x4242)
        assert reject_reason_for(_validate(packet)) == RejectReason.INVALID_CID

    def test_core_field_mutated_packet_is_not_rejected(self):
        """The paper's key design point: abnormal PSM + garbage parse fine."""
        packet = connection_request(psm=0x0100, scid=0x0040)
        packet.garbage = b"\x01\x02"
        assert reject_reason_for(_validate(packet, cids=frozenset({0x0040}))) is None


class TestIsMalformed:
    def test_valid_transition_packet_is_not_malformed(self):
        assert not is_malformed(connection_request(psm=1, scid=0x40))

    def test_garbage_makes_malformed(self):
        packet = echo_request()
        packet.garbage = b"\x00"
        assert is_malformed(packet)

    def test_abnormal_psm_makes_malformed(self):
        assert is_malformed(connection_request(psm=0x0300, scid=0x40))

    def test_unallocated_cidp_makes_malformed(self):
        assert is_malformed(configuration_request(dcid=0x0999))

    def test_cidp_matching_observed_allocation_is_clean(self):
        packet = configuration_request(dcid=0x0999)
        assert not is_malformed(packet, allocated_cids=frozenset({0x0999}))


class TestSpecLayout:
    def test_complete_layout_ok(self):
        assert spec_layout_ok(connection_request(psm=1, scid=2))

    def test_unknown_code_not_ok(self):
        assert not spec_layout_ok(L2capPacket(code=0x55))

    def test_missing_field_not_ok(self):
        packet = connection_request(psm=1, scid=2)
        del packet.fields["scid"]
        assert not spec_layout_ok(packet)
