"""Tests for the protocol constants (paper §II.A facts)."""

from __future__ import annotations

import pytest

from repro.l2cap.constants import (
    ABNORMAL_PSM_RANGES,
    CIDP_MUTATION_RANGE,
    CommandCode,
    DYNAMIC_CID_MAX,
    DYNAMIC_CID_MIN,
    Psm,
    REQUEST_CODES,
    RESPONSE_CODES,
    SIGNALING_CID,
    is_valid_psm,
)


class TestCommandCodes:
    def test_there_are_26_commands(self):
        assert len(CommandCode) == 26

    def test_codes_are_contiguous_from_1(self):
        values = sorted(code.value for code in CommandCode)
        assert values == list(range(0x01, 0x1B))

    def test_every_request_has_a_distinct_code(self):
        assert len(REQUEST_CODES) == 12

    def test_every_response_has_a_distinct_code(self):
        assert len(RESPONSE_CODES) == 13

    def test_flow_control_credit_ind_is_neither(self):
        ind = CommandCode.FLOW_CONTROL_CREDIT_IND
        assert ind not in REQUEST_CODES
        assert ind not in RESPONSE_CODES

    def test_requests_and_responses_are_disjoint(self):
        assert not (REQUEST_CODES & RESPONSE_CODES)


class TestSignalingChannel:
    def test_signaling_cid_is_0x0001(self):
        assert SIGNALING_CID == 0x0001

    def test_dynamic_range_starts_at_0x0040(self):
        assert DYNAMIC_CID_MIN == 0x0040
        assert DYNAMIC_CID_MAX == 0xFFFF


class TestPsmValidity:
    @pytest.mark.parametrize("psm", [Psm.SDP, Psm.RFCOMM, Psm.AVDTP, 0x1001])
    def test_wellknown_psms_are_valid(self, psm):
        assert is_valid_psm(psm)

    @pytest.mark.parametrize("psm", [0x0000, 0x0002, 0x0100, 0x0101, 0x0300])
    def test_even_or_odd_msb_psms_are_invalid(self, psm):
        assert not is_valid_psm(psm)

    def test_psm_must_be_16_bit(self):
        assert not is_valid_psm(0x10001)
        assert not is_valid_psm(-1)

    def test_odd_lsb_even_msb_rule(self):
        # LSB of low byte must be 1, LSB of high byte must be 0.
        assert is_valid_psm(0x0201)
        assert not is_valid_psm(0x0301 | 0x0100)  # 0x0301 has odd MSB... explicit:
        assert not is_valid_psm(0x0101)


class TestTable4Ranges:
    def test_abnormal_psm_ranges_match_table4(self):
        assert ABNORMAL_PSM_RANGES == (
            (0x0100, 0x01FF),
            (0x0300, 0x03FF),
            (0x0500, 0x05FF),
            (0x0700, 0x07FF),
            (0x0900, 0x09FF),
            (0x0B00, 0x0BFF),
            (0x0D00, 0x0DFF),
        )

    def test_abnormal_ranges_contain_no_valid_psm(self):
        for start, end in ABNORMAL_PSM_RANGES:
            for psm in range(start, end + 1, 37):
                assert not is_valid_psm(psm)

    def test_cidp_range_is_the_dynamic_range(self):
        assert CIDP_MUTATION_RANGE == (0x0040, 0xFFFF)
