"""Property-based tests for the packet codec (hypothesis)."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.l2cap.constants import CommandCode
from repro.l2cap.packets import COMMAND_SPECS, L2capPacket


def _packet_strategy():
    """Strategy generating spec-conformant packets with random values."""

    @st.composite
    def build(draw):
        code = draw(st.sampled_from(sorted(COMMAND_SPECS)))
        spec = COMMAND_SPECS[code]
        fields = {
            field.name: draw(st.integers(min_value=0, max_value=field.max_value))
            for field in spec.fields
        }
        tail = draw(st.binary(max_size=32)) if spec.tail_name else b""
        garbage = draw(st.binary(max_size=16))
        identifier = draw(st.integers(min_value=0, max_value=255))
        return L2capPacket(code, identifier, fields, tail=tail, garbage=garbage)

    return build()


class TestCodecProperties:
    @given(_packet_strategy())
    @settings(max_examples=300)
    def test_round_trip_is_identity(self, packet):
        decoded = L2capPacket.decode(packet.encode())
        assert decoded.code == packet.code
        assert decoded.identifier == packet.identifier
        assert decoded.fields == packet.fields
        assert decoded.tail == packet.tail
        assert decoded.garbage == packet.garbage

    @given(_packet_strategy())
    @settings(max_examples=200)
    def test_reencoding_is_byte_identical(self, packet):
        raw = packet.encode()
        assert L2capPacket.decode(raw).encode() == raw

    @given(_packet_strategy())
    @settings(max_examples=200)
    def test_lengths_exclude_garbage(self, packet):
        assert packet.payload_length == packet.wire_length - 4 - len(packet.garbage)

    @given(_packet_strategy(), st.binary(min_size=1, max_size=8))
    @settings(max_examples=100)
    def test_adding_garbage_never_changes_declared_lengths(self, packet, extra):
        before = (packet.payload_length, packet.data_length)
        packet.garbage += extra
        assert (packet.payload_length, packet.data_length) == before

    @given(st.binary(min_size=8, max_size=64))
    @settings(max_examples=300)
    def test_decode_never_crashes_on_random_bytes(self, raw):
        """Decode either succeeds or raises the library's decode error."""
        from repro.errors import PacketDecodeError

        try:
            packet = L2capPacket.decode(raw)
        except PacketDecodeError:
            return
        assert packet.wire_length >= 8
