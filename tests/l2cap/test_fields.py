"""Tests for the F/D/MC/MA field taxonomy (paper Fig. 6 and Table IV)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.l2cap.constants import CommandCode, is_valid_psm
from repro.l2cap.fields import (
    CIDP_FIELD_NAMES,
    FieldCategory,
    MA_FIELD_NAMES,
    MC_FIELD_NAMES,
    abnormal_psm_values,
    categorize_field,
    commands_with_core_fields,
    is_abnormal_psm,
    is_normal_cidp,
    mutable_application_fields,
    mutable_core_fields,
    random_abnormal_psm,
    random_normal_cidp,
)
from repro.l2cap.packets import L2capPacket, connection_request


class TestTaxonomy:
    def test_mc_fields_match_figure6(self):
        assert MC_FIELD_NAMES == {"psm", "scid", "dcid", "icid", "cont_id"}

    def test_cidp_is_mc_minus_psm(self):
        assert CIDP_FIELD_NAMES == MC_FIELD_NAMES - {"psm"}

    @pytest.mark.parametrize("name", ["header_cid"])
    def test_fixed_fields(self, name):
        assert categorize_field(name) is FieldCategory.FIXED

    @pytest.mark.parametrize("name", ["payload_len", "code", "identifier", "data_len"])
    def test_dependent_fields(self, name):
        assert categorize_field(name) is FieldCategory.DEPENDENT

    @pytest.mark.parametrize("name", sorted(MC_FIELD_NAMES))
    def test_mutable_core_fields(self, name):
        assert categorize_field(name) is FieldCategory.MUTABLE_CORE

    @pytest.mark.parametrize(
        "name", ["reason", "result", "status", "flags", "mtu", "spsm", "qos"]
    )
    def test_mutable_application_fields(self, name):
        assert categorize_field(name) is FieldCategory.MUTABLE_APPLICATION

    def test_unknown_field_raises(self):
        with pytest.raises(KeyError):
            categorize_field("bogus")

    def test_ma_and_mc_disjoint(self):
        assert not (MA_FIELD_NAMES & MC_FIELD_NAMES)

    def test_packet_core_field_introspection(self):
        packet = connection_request(psm=1, scid=0x40)
        assert mutable_core_fields(packet) == ("psm", "scid")
        assert mutable_application_fields(packet) == ()

    def test_connection_rsp_has_ma_fields(self):
        packet = L2capPacket(CommandCode.CONNECTION_RSP)
        assert set(mutable_core_fields(packet)) == {"dcid", "scid"}
        assert set(mutable_application_fields(packet)) == {"result", "status"}

    def test_commands_with_core_fields_excludes_echo(self):
        with_core = commands_with_core_fields()
        assert CommandCode.ECHO_REQ not in with_core
        assert CommandCode.CONNECTION_REQ in with_core
        assert CommandCode.MOVE_CHANNEL_REQ in with_core


class TestTable4Pools:
    def test_abnormal_pool_contains_no_valid_psm(self):
        pool = abnormal_psm_values()
        sample = random.Random(0).sample(pool, 500)
        assert all(not is_valid_psm(value) for value in sample)

    def test_abnormal_pool_contains_all_even_values(self):
        pool = set(abnormal_psm_values())
        assert 0x0000 in pool
        assert 0x0ABC in pool
        assert 0xFFFE in pool

    def test_is_abnormal_psm(self):
        assert is_abnormal_psm(0x0100)
        assert is_abnormal_psm(0x0044)
        assert not is_abnormal_psm(0x0001)

    def test_is_normal_cidp_bounds(self):
        assert not is_normal_cidp(0x003F)
        assert is_normal_cidp(0x0040)
        assert is_normal_cidp(0xFFFF)
        assert not is_normal_cidp(0x10000)


class TestRandomDraws:
    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=100)
    def test_random_abnormal_psm_never_valid(self, seed):
        value = random_abnormal_psm(random.Random(seed))
        assert not is_valid_psm(value)
        assert 0 <= value <= 0xFFFF

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=100)
    def test_random_cidp_in_normal_range(self, seed):
        value = random_normal_cidp(random.Random(seed))
        assert is_normal_cidp(value)

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=50)
    def test_random_cidp_one_byte_fits(self, seed):
        value = random_normal_cidp(random.Random(seed), field_size=1)
        assert 0 <= value <= 0xFF

    def test_both_abnormality_families_are_drawn(self):
        rng = random.Random(42)
        values = [random_abnormal_psm(rng) for _ in range(200)]
        assert any(v % 2 == 0 for v in values)  # even family
        assert any((v >> 8) & 1 for v in values)  # odd-MSB family
