"""Property-based tests for the codec's encode cache (hypothesis).

The single-encode wire path relies on packets caching their wire bytes
with dirty-flag invalidation. These properties pin the contract down:
any mutation after an ``encode()`` must be reflected by the next encode,
round trips stay byte-identical with caching on, and the loopback view
(the decoded-object fast path across the virtual link) is only offered
when it is indistinguishable from re-parsing the wire bytes.
"""

from __future__ import annotations

import copy
import pickle

from hypothesis import given, settings, strategies as st

from repro.l2cap.constants import CommandCode, RejectReason, SIGNALING_CID
from repro.l2cap.packets import COMMAND_SPECS, L2capPacket
from repro.l2cap.validation import (
    Violation,
    frame_violations,
    is_malformed,
    structural_reject_reason,
)


def _packet_strategy():
    """Spec-conformant packets with random values (like the codec tests)."""

    @st.composite
    def build(draw):
        code = draw(st.sampled_from(sorted(COMMAND_SPECS)))
        spec = COMMAND_SPECS[code]
        fields = {
            field.name: draw(st.integers(min_value=0, max_value=field.max_value))
            for field in spec.fields
        }
        tail = draw(st.binary(max_size=32)) if spec.tail_name else b""
        garbage = draw(st.binary(max_size=16))
        identifier = draw(st.integers(min_value=0, max_value=255))
        return L2capPacket(code, identifier, fields, tail=tail, garbage=garbage)

    return build()


def _clone(packet: L2capPacket) -> L2capPacket:
    """A fresh, never-encoded packet with identical content."""
    return L2capPacket(
        packet.code,
        packet.identifier,
        dict(packet.fields),
        tail=packet.tail,
        garbage=packet.garbage,
        header_cid=packet.header_cid,
        declared_payload_len=packet.declared_payload_len,
        declared_data_len=packet.declared_data_len,
        fill_defaults=False,
    )


class TestEncodeCache:
    @given(_packet_strategy())
    @settings(max_examples=200)
    def test_second_encode_returns_same_bytes(self, packet):
        assert packet.encode() == packet.encode()
        assert packet.wire_length == len(packet.encode())

    @given(_packet_strategy(), st.binary(min_size=1, max_size=8))
    @settings(max_examples=200)
    def test_tail_mutation_after_encode_is_reflected(self, packet, extra):
        packet.encode()
        packet.tail = packet.tail + extra
        assert packet.encode() == _clone(packet).encode()
        assert packet.wire_length == len(packet.encode())

    @given(_packet_strategy(), st.binary(min_size=1, max_size=8))
    @settings(max_examples=200)
    def test_garbage_mutation_after_encode_is_reflected(self, packet, extra):
        packet.encode()
        packet.garbage += extra
        assert packet.encode() == _clone(packet).encode()

    @given(_packet_strategy(), st.integers(min_value=0, max_value=255))
    @settings(max_examples=200)
    def test_field_mutation_after_encode_is_reflected(self, packet, value):
        packet.encode()
        for name in packet.field_names():
            packet.fields[name] = value
        assert packet.encode() == _clone(packet).encode()

    @given(_packet_strategy(), st.integers(min_value=0, max_value=255))
    @settings(max_examples=100)
    def test_identifier_mutation_after_encode_is_reflected(self, packet, identifier):
        packet.encode()
        packet.identifier = identifier
        assert packet.encode() == _clone(packet).encode()

    @given(_packet_strategy())
    @settings(max_examples=100)
    def test_code_mutation_after_encode_is_reflected(self, packet):
        packet.encode()
        packet.code = CommandCode.ECHO_REQ
        assert packet.encode() == _clone(packet).encode()

    @given(_packet_strategy(), st.integers(min_value=0, max_value=30))
    @settings(max_examples=100)
    def test_declared_length_mutation_after_encode_is_reflected(self, packet, lie):
        packet.encode()
        packet.declared_data_len = lie
        assert packet.encode() == _clone(packet).encode()

    @given(_packet_strategy())
    @settings(max_examples=100)
    def test_field_dict_operations_invalidate(self, packet):
        packet.encode()
        packet.fields.update({name: 1 for name in packet.field_names()})
        first = packet.encode()
        assert first == _clone(packet).encode()
        packet.fields.clear()
        assert packet.encode() == _clone(packet).encode()

    @given(_packet_strategy())
    @settings(max_examples=100)
    def test_validation_memo_invalidated_with_cache(self, packet):
        # Judge once (memoizes the structural pass), then mutate: the
        # memo must not leak the first verdict into the second.
        frame_violations(packet, signaling_mtu=1 << 30)
        packet.garbage = b"\xff" + packet.garbage
        packet.declared_data_len = 0
        after = frame_violations(packet, signaling_mtu=1 << 30)
        assert after == frame_violations(_clone(packet), signaling_mtu=1 << 30)


def _mutated(draw_mutation: int, packet: L2capPacket) -> L2capPacket:
    """Apply one of several spec-deviating mutations for validation tests."""
    if draw_mutation == 1:
        packet.declared_data_len = 0
    elif draw_mutation == 2:
        packet.code = 0x55
    elif draw_mutation == 3 and packet.field_names():
        del packet.fields[packet.field_names()[0]]
    elif draw_mutation == 4:
        packet.header_cid = 0x0040
    return packet


class TestFastPathsMatchReportBuilders:
    """The allocation-free fast paths must track frame_violations."""

    @given(
        _packet_strategy(),
        st.integers(min_value=0, max_value=4),
        st.sets(st.integers(min_value=0x40, max_value=0x45)),
    )
    @settings(max_examples=250)
    def test_is_malformed_equals_report_cleanliness(self, packet, mutation, cids):
        packet = _mutated(mutation, packet)
        allocated = frozenset(cids)
        expected = not frame_violations(
            packet, signaling_mtu=1 << 30, allocated_cids=allocated
        ).clean
        assert is_malformed(packet, allocated_cids=allocated) == expected

    @given(
        _packet_strategy(),
        st.integers(min_value=0, max_value=4),
        st.sampled_from([48, 672, 1 << 30]),
    )
    @settings(max_examples=250)
    def test_structural_reject_matches_report_mapping(self, packet, mutation, mtu):
        packet = _mutated(mutation, packet)
        if packet.header_cid != SIGNALING_CID:
            return  # the engine routes data frames before this check
        report = frame_violations(packet, signaling_mtu=mtu)
        if report.has(Violation.MTU_EXCEEDED):
            expected = RejectReason.SIGNALING_MTU_EXCEEDED
        elif (
            report.has(Violation.UNKNOWN_CODE)
            or report.has(Violation.LENGTH_MISMATCH)
            or report.has(Violation.TRUNCATED_FIELDS)
        ):
            expected = RejectReason.COMMAND_NOT_UNDERSTOOD
        else:
            expected = None
        assert structural_reject_reason(packet, mtu) == expected


class TestSerialisationDropsCaches:
    @given(_packet_strategy())
    @settings(max_examples=100)
    def test_pickle_round_trip_preserves_behaviour(self, packet):
        packet.encode()
        packet.code = CommandCode.CONFIGURATION_REQ  # resets spec cache to unset
        clone = pickle.loads(pickle.dumps(packet))
        assert clone == packet
        assert clone.spec is packet.spec
        assert clone.encode() == packet.encode()

    @given(_packet_strategy())
    @settings(max_examples=100)
    def test_deepcopy_detaches_caches_and_ownership(self, packet):
        packet.encode()
        packet.code = CommandCode.CONFIGURATION_REQ
        clone = copy.deepcopy(packet)
        assert clone.spec is packet.spec
        clone.fields["dcid"] = (clone.fields.get("dcid", 0) + 1) & 0xFFFF
        assert clone.encode() != packet.encode()
        # Mutating the copy must not have invalidated the original.
        assert packet.encode() == pickle.loads(pickle.dumps(packet)).encode()


class TestRoundTripWithCaching:
    @given(_packet_strategy())
    @settings(max_examples=200)
    def test_decode_encode_byte_identical(self, packet):
        raw = packet.encode()
        assert L2capPacket.decode(raw).encode() == raw

    @given(_packet_strategy(), st.binary(min_size=1, max_size=6))
    @settings(max_examples=150)
    def test_decoded_packet_mutation_invalidates_primed_cache(self, packet, extra):
        raw = packet.encode()
        decoded = L2capPacket.decode(raw)
        assert decoded.encode() == raw
        decoded.garbage += extra
        assert decoded.encode() == raw + extra

    @given(st.binary(min_size=8, max_size=64))
    @settings(max_examples=200)
    def test_decode_primes_cache_on_arbitrary_bytes(self, raw):
        from repro.errors import PacketDecodeError

        try:
            packet = L2capPacket.decode(raw)
        except PacketDecodeError:
            return
        assert packet.encode() == raw
        assert packet.wire_length == len(raw)


class TestLoopbackView:
    @given(_packet_strategy())
    @settings(max_examples=200)
    def test_loopback_view_matches_decode(self, packet):
        """When the fast path offers the object, it equals the re-parse."""
        view = packet.loopback_view()
        decoded = L2capPacket.decode(packet.encode())
        if view is None:
            return
        assert view is packet
        assert decoded.code == packet.code
        assert decoded.identifier == packet.identifier
        assert dict(decoded.fields) == dict(packet.fields)
        assert decoded.tail == packet.tail
        assert decoded.garbage == packet.garbage
        assert decoded.declared_payload_len is None
        assert decoded.declared_data_len is None

    @given(_packet_strategy(), st.integers(min_value=0, max_value=30))
    @settings(max_examples=100)
    def test_no_loopback_for_length_lies(self, packet, lie):
        packet.declared_data_len = lie
        assert packet.loopback_view() is None

    @given(_packet_strategy())
    @settings(max_examples=100)
    def test_no_loopback_for_missing_fields(self, packet):
        if not packet.field_names():
            return
        del packet.fields[packet.field_names()[0]]
        assert packet.loopback_view() is None

    def test_no_loopback_for_unknown_code(self):
        packet = L2capPacket(0x55, 1, {"a": 1}, fill_defaults=False)
        assert packet.loopback_view() is None

    def test_data_frame_loopback(self):
        frame = L2capPacket(
            0, 0, {}, tail=b"payload", header_cid=0x0040, fill_defaults=False
        )
        assert frame.loopback_view() is frame
        signaling_disguise = L2capPacket(
            CommandCode.ECHO_REQ, 1, header_cid=SIGNALING_CID
        )
        assert signaling_disguise.loopback_view() is signaling_disguise
