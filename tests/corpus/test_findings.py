"""Tests for the persistent finding database."""

from __future__ import annotations

import dataclasses

from repro.core.config import FuzzConfig
from repro.corpus.findings import (
    FindingDatabase,
    FindingRecord,
    dict_to_record,
    record_from_campaign,
    record_to_dict,
    trigger_hash,
)
from repro.l2cap.packets import (
    configuration_request,
    connection_request,
    echo_request,
)
from repro.testbed.profiles import D2, D4
from repro.testbed.session import FuzzSession


def _record(**overrides) -> FindingRecord:
    packets = [
        connection_request(psm=0x0001, scid=0x40, identifier=1),
        configuration_request(dcid=0x0999, identifier=2),
    ]
    fields = dict(
        vendor="Google",
        vulnerability_class="DoS",
        trigger="CONFIGURATION_REQ(...)",
        trigger_hash=trigger_hash(packets),
        device_id="D2",
        state="WAIT_CONFIG",
        error_message="Connection Failed",
        packets=tuple(p.encode().hex() for p in packets),
        crash_id="bluedroid-cidp-null-deref",
        sim_time=12.5,
    )
    fields.update(overrides)
    return FindingRecord(**fields)


class TestTriggerHash:
    def test_shape_invariant_to_field_values(self):
        """Same command skeleton, different seeds: one bucket."""
        first = [
            connection_request(psm=0x0001, scid=0x40, identifier=7),
            configuration_request(dcid=0x1234, identifier=8),
        ]
        second = [
            connection_request(psm=0x0019, scid=0x99, identifier=200),
            configuration_request(dcid=0xBEEF, identifier=201),
        ]
        assert trigger_hash(first) == trigger_hash(second)

    def test_different_shapes_bucket_apart(self):
        assert trigger_hash([echo_request(b"x")]) != trigger_hash(
            [connection_request(psm=1, scid=0x40)]
        )


class TestDatabase:
    def test_round_trip(self):
        record = _record()
        assert dict_to_record(record_to_dict(record)) == record

    def test_new_then_duplicate(self, tmp_path):
        database = FindingDatabase(tmp_path)
        assert database.record(_record()) == "new"
        assert database.record(_record()) == "duplicate"
        assert len(database) == 1
        assert database.records()[0].occurrences == 2

    def test_duplicate_across_database_instances(self, tmp_path):
        """Cross-run dedup: a fresh handle sees the stored buckets."""
        assert FindingDatabase(tmp_path).record(_record()) == "new"
        assert FindingDatabase(tmp_path).record(_record()) == "duplicate"

    def test_distinct_keys_make_distinct_buckets(self, tmp_path):
        database = FindingDatabase(tmp_path)
        database.record(_record())
        database.record(_record(vendor="Apple"))
        database.record(_record(vulnerability_class="Crash"))
        assert len(database) == 3

    def test_garbage_dictionary(self, tmp_path):
        database = FindingDatabase(tmp_path)
        trigger = configuration_request(dcid=0x0999, identifier=2)
        trigger.garbage = b"\xd2\x3a\x91\x0e"
        record = _record(packets=tuple([trigger.encode().hex()]))
        database.record(record)
        assert database.garbage_dictionary() == (b"\xd2\x3a\x91\x0e",)

    def test_key_uses_trigger_hash(self):
        record = _record()
        assert record.key == ("l2cap", "Google", "DoS", record.trigger_hash)


class TestRecordFromCampaign:
    def _campaign(self):
        session = FuzzSession(D2, FuzzConfig(max_packets=50_000))
        report = session.run()
        assert report.vulnerability_found
        return session, report

    def test_campaign_finding_is_minimised_and_stored(self, tmp_path):
        session, report = self._campaign()
        database = FindingDatabase(tmp_path)
        packets = [entry.packet for entry in session.fuzzer.sniffer.sent()]
        status = record_from_campaign(
            database, report.findings[0], D2, packets
        )
        assert status == "new"
        record = database.records()[0]
        assert record.crash_id == "bluedroid-cidp-null-deref"
        assert len(record.packets) <= 4  # minimised from ~226
        assert record.vendor == "Google"

    def test_non_reproducible_prefix_not_stored(self, tmp_path):
        _, report = self._campaign()
        database = FindingDatabase(tmp_path)
        benign = [echo_request(b"x", identifier=1)]
        status = record_from_campaign(
            database, report.findings[0], D2, benign
        )
        assert status == "not-reproducible"
        assert len(database) == 0

    def test_same_bug_other_seed_is_duplicate(self, tmp_path):
        database = FindingDatabase(tmp_path)
        for seed in (0x1202, 0x0707):
            session = FuzzSession(D2, FuzzConfig(max_packets=50_000, seed=seed))
            report = session.run()
            packets = [entry.packet for entry in session.fuzzer.sniffer.sent()]
            record_from_campaign(database, report.findings[0], D2, packets)
        assert len(database) == 1
        assert database.records()[0].occurrences == 2


def test_occurrences_merge_preserves_first_record(tmp_path):
    database = FindingDatabase(tmp_path)
    database.record(_record(sim_time=1.0))
    database.record(
        dataclasses.replace(_record(), sim_time=99.0, device_id="D4")
    )
    record = database.records()[0]
    assert record.sim_time == 1.0
    assert record.device_id == "D2"
    assert record.occurrences == 2


def test_clean_device_never_records(tmp_path):
    """D4 has no injected bugs: campaigns produce nothing to store."""
    session = FuzzSession(D4, FuzzConfig(max_packets=1500))
    report = session.run()
    assert not report.vulnerability_found
    assert len(FindingDatabase(tmp_path)) == 0
