"""Tests for the directory-backed corpus store and cmin minimisation."""

from __future__ import annotations

import types

from repro.core.config import FuzzConfig
from repro.corpus.entry import entry_from_packets
from repro.corpus.store import CorpusStore, _detection_prefix
from repro.l2cap.packets import connection_request, echo_request
from repro.testbed.profiles import D2
from repro.testbed.session import FuzzSession


def _entry(tokens, packet_count=1, device_id="D2", armed=False, seed=7, ident=1):
    # *ident* varies the packet bytes, so entries with equal lengths can
    # still carry distinct content-hash IDs.
    packets = [
        echo_request(b"x", identifier=ident + i) for i in range(packet_count)
    ]
    return entry_from_packets(
        packets=packets,
        unlocked=tokens,
        covered=tokens,
        device_id=device_id,
        strategy="sequential",
        seed=seed,
        armed=armed,
    )


class TestStore:
    def test_empty_store(self, tmp_path):
        store = CorpusStore(tmp_path / "corpus")
        assert not store.exists()
        assert len(store) == 0
        assert store.entries() == []
        assert store.coverage() == frozenset()

    def test_add_and_reload(self, tmp_path):
        store = CorpusStore(tmp_path / "corpus")
        entry = _entry(["CLOSED"], packet_count=2)
        assert store.add(entry)
        assert store.exists()
        reloaded = CorpusStore(tmp_path / "corpus")
        assert reloaded.entries() == [entry]

    def test_add_is_idempotent(self, tmp_path):
        store = CorpusStore(tmp_path)
        entry = _entry(["CLOSED"])
        assert store.add(entry)
        assert not store.add(entry)
        assert len(store) == 1

    def test_entries_sorted_by_id(self, tmp_path):
        store = CorpusStore(tmp_path)
        for count in (3, 1, 2):
            store.add(_entry(["CLOSED"], packet_count=count))
        ids = [entry.entry_id for entry in store.entries()]
        assert ids == sorted(ids)

    def test_coverage_union_and_frequencies(self, tmp_path):
        store = CorpusStore(tmp_path)
        store.add(_entry(["CLOSED", "CLOSED>OPEN"], packet_count=1))
        store.add(_entry(["CLOSED", "OPEN"], packet_count=2))
        assert store.coverage() == {"CLOSED", "OPEN", "CLOSED>OPEN"}
        # Transition tokens never count towards the state prior.
        assert store.state_frequencies() == {"CLOSED": 2, "OPEN": 1}


class TestMinimize:
    def test_cmin_prefers_cheapest_covering_entry(self, tmp_path):
        store = CorpusStore(tmp_path)
        store.add(_entry(["CLOSED", "OPEN", "WAIT_CONFIG"], packet_count=9))
        store.add(_entry(["CLOSED"], packet_count=1, ident=20))
        store.add(_entry(["OPEN"], packet_count=1, ident=30))
        canonical = store.minimize()
        # The 9-packet entry is still the only witness of WAIT_CONFIG,
        # but CLOSED and OPEN pick their 1-packet entries.
        covered = set()
        for entry in canonical:
            covered.update(entry.covered)
        assert covered == store.coverage()
        assert len(canonical) == 3
        one_packet = [e for e in canonical if e.packet_count == 1]
        assert len(one_packet) == 2

    def test_cmin_drops_redundant_entries(self, tmp_path):
        store = CorpusStore(tmp_path)
        store.add(_entry(["CLOSED"], packet_count=1))
        store.add(_entry(["CLOSED"], packet_count=5))
        store.add(_entry(["CLOSED"], packet_count=7))
        canonical = store.minimize()
        assert len(canonical) == 1
        assert canonical[0].packet_count == 1

    def test_canonical_file_round_trips(self, tmp_path):
        store = CorpusStore(tmp_path)
        store.add(_entry(["CLOSED"], packet_count=1))
        store.add(_entry(["OPEN"], packet_count=2))
        canonical = store.minimize()
        assert store.canonical_path.is_file()
        assert CorpusStore(tmp_path).canonical_entries() == canonical

    def test_minimize_without_write(self, tmp_path):
        store = CorpusStore(tmp_path)
        store.add(_entry(["CLOSED"]))
        store.minimize(write=False)
        assert not store.canonical_path.is_file()


class TestDetectionPrefix:
    """The reproducer prefix is cut by send index, not by timestamp."""

    @staticmethod
    def _traced(packet, sim_time):
        return types.SimpleNamespace(packet=packet, sim_time=sim_time)

    def test_cut_excludes_same_tick_post_detection_packets(self):
        # Five fuzz packets, then two liveness probes the detector put
        # on the wire at the detection tick itself.
        sent = [self._traced(f"fuzz-{i}", float(i)) for i in range(5)]
        sent += [self._traced("probe-echo", 4.0), self._traced("probe-info", 4.0)]
        finding = types.SimpleNamespace(sim_time=4.0, sent_index=5)
        assert _detection_prefix(sent, finding) == [
            "fuzz-0", "fuzz-1", "fuzz-2", "fuzz-3", "fuzz-4",
        ]

    def test_legacy_finding_falls_back_to_timestamp_rule(self):
        sent = [self._traced(f"fuzz-{i}", float(i)) for i in range(3)]
        finding = types.SimpleNamespace(sim_time=1.0, sent_index=None)
        assert _detection_prefix(sent, finding) == ["fuzz-0", "fuzz-1"]

    def test_campaign_prefix_excludes_diagnose_probes(self):
        """End-to-end pin: the detector's confirming ping shares the
        detection tick, so the old ``sim_time <=`` rule leaked it into
        the stored reproducer; the send-index cut never does."""
        session = FuzzSession(D2, FuzzConfig(max_packets=50_000))
        report = session.run()
        finding = report.findings[0]
        sent = session.fuzzer.sniffer.sent()
        assert finding.sent_index is not None
        same_tick_tail = [
            traced
            for traced in sent[finding.sent_index:]
            if traced.sim_time <= finding.sim_time
        ]
        assert same_tick_tail  # the probes the timestamp rule leaked
        prefix = _detection_prefix(sent, finding)
        assert len(prefix) == finding.sent_index
        assert prefix[-1].describe() == finding.trigger


class TestExport:
    def test_export_jsonl(self, tmp_path):
        store = CorpusStore(tmp_path / "corpus")
        store.add(_entry(["CLOSED"]))
        store.add(
            entry_from_packets(
                [connection_request(psm=0x0001, scid=0x40, identifier=1)],
                ["WAIT_CONNECT"],
                ["WAIT_CONNECT"],
                "D5",
                "targeted",
                9,
                True,
            )
        )
        out = tmp_path / "all.jsonl"
        assert store.export_jsonl(out) == 2
        assert len(out.read_text().splitlines()) == 2
