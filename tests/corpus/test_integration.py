"""End-to-end corpus workflows: fleet write-back, replay, feedback.

These pin the PR's acceptance criteria: a corpus written by a fleet run
reloads and replays every stored finding deterministically, and the
coverage-guided scheduler reaches the sequential baseline's state
coverage with fewer mutated packets.
"""

from __future__ import annotations

import pytest

from repro.analysis.state_coverage import (
    StateCoverageAnalyzer,
    packets_to_coverage,
)
from repro.core.config import FuzzConfig
from repro.core.fleet import FleetOrchestrator
from repro.corpus import (
    CorpusStore,
    FindingDatabase,
    replay_entry,
    replay_finding,
)
from repro.testbed.profiles import ALL_PROFILES, D2, PROFILES_BY_ID
from repro.testbed.session import FuzzSession


@pytest.fixture(scope="module")
def fleet_corpus(tmp_path_factory):
    """One 3-profile × 2-strategy fleet run writing a shared corpus."""
    root = tmp_path_factory.mktemp("corpus")
    orchestrator = FleetOrchestrator(
        ALL_PROFILES[:3],
        ["sequential", "coverage_guided"],
        fleet_seed=7,
        workers=2,
        base_config=FuzzConfig(max_packets=1200),
        corpus_dir=str(root),
    )
    report = orchestrator.run()
    return root, report


class TestFleetWriteBack:
    def test_corpus_populated(self, fleet_corpus):
        root, report = fleet_corpus
        store = CorpusStore(root)
        assert len(store) > 0
        assert len(FindingDatabase(root)) > 0
        assert "CLOSED" in store.coverage()

    def test_every_stored_finding_replays_deterministically(self, fleet_corpus):
        root, _ = fleet_corpus
        database = FindingDatabase(root)
        for record in database.records():
            first = replay_finding(record, PROFILES_BY_ID)
            second = replay_finding(record, PROFILES_BY_ID)
            assert first.reproduced
            assert not first.regression
            assert first == second  # deterministic, byte for byte

    def test_entries_replay_and_cover_states(self, fleet_corpus):
        root, _ = fleet_corpus
        store = CorpusStore(root)
        canonical = store.minimize()
        assert canonical
        for entry in canonical[:5]:
            outcome = replay_entry(entry, PROFILES_BY_ID)
            assert outcome.packets_replayed > 0
            assert outcome.covered_states

    def test_canonical_corpus_still_covers_union(self, fleet_corpus):
        root, _ = fleet_corpus
        store = CorpusStore(root)
        canonical = store.minimize(write=False)
        covered: set[str] = set()
        for entry in canonical:
            covered.update(entry.covered)
        assert covered == set(store.coverage())
        assert len(canonical) <= len(store)

    def test_second_fleet_run_deduplicates_findings(self, fleet_corpus):
        root, _ = fleet_corpus
        before = {
            record.bucket_id: record.occurrences
            for record in FindingDatabase(root).records()
        }
        FleetOrchestrator(
            ALL_PROFILES[:3],
            ["sequential"],
            fleet_seed=99,
            base_config=FuzzConfig(max_packets=1200),
            corpus_dir=str(root),
        ).run()
        after = {
            record.bucket_id: record.occurrences
            for record in FindingDatabase(root).records()
        }
        # Re-found bugs land in their existing buckets with higher
        # occurrence counts instead of spawning new ones.
        assert any(
            after[bucket] > count
            for bucket, count in before.items()
            if bucket in after
        )


class TestCoverageFeedback:
    def test_guided_reaches_baseline_coverage_with_fewer_packets(self):
        baseline = FuzzSession(
            D2, FuzzConfig(max_packets=3000), armed=False, strategy="sequential"
        )
        baseline.run()
        target = StateCoverageAnalyzer().analyze(baseline.fuzzer.sniffer)
        guided = FuzzSession(
            D2,
            FuzzConfig(max_packets=3000),
            armed=False,
            strategy="coverage_guided",
        )
        guided.run()
        baseline_packets = packets_to_coverage(
            baseline.fuzzer.sniffer, len(target)
        )
        guided_packets = packets_to_coverage(guided.fuzzer.sniffer, len(target))
        assert baseline_packets is not None
        assert guided_packets is not None
        assert guided_packets < baseline_packets

    def test_guided_campaign_is_deterministic(self):
        config = FuzzConfig(max_packets=900)
        first = FuzzSession(D2, config, armed=False, strategy="coverage_guided")
        second = FuzzSession(D2, config, armed=False, strategy="coverage_guided")
        assert first.run() == second.run()


class TestSessionWriteBack:
    def test_session_records_unlocks_and_findings(self, tmp_path):
        session = FuzzSession(
            D2, FuzzConfig(max_packets=50_000), corpus_dir=str(tmp_path)
        )
        report = session.run()
        assert report.vulnerability_found
        store = CorpusStore(tmp_path)
        replayable = [
            prefix for _, prefix in session.fuzzer.coverage_log if prefix > 0
        ]
        assert len(store) == len(replayable)
        assert len(FindingDatabase(tmp_path)) == 1

    def test_rerun_is_idempotent(self, tmp_path):
        for _ in range(2):
            FuzzSession(
                D2, FuzzConfig(max_packets=50_000), corpus_dir=str(tmp_path)
            ).run()
        store = CorpusStore(tmp_path)
        database = FindingDatabase(tmp_path)
        # Identical campaign, identical content hashes: no growth, but
        # the finding bucket counts the re-detection.
        assert len(database) == 1
        assert database.records()[0].occurrences == 2
        first_ids = {entry.entry_id for entry in store.entries()}
        FuzzSession(
            D2, FuzzConfig(max_packets=50_000), corpus_dir=str(tmp_path)
        ).run()
        assert {entry.entry_id for entry in store.entries()} == first_ids

    def test_dictionary_splice_changes_garbage_stream(self, tmp_path):
        plain = FuzzSession(D2, FuzzConfig(max_packets=600), armed=False)
        plain.run()
        spliced = FuzzSession(
            D2,
            FuzzConfig(max_packets=600),
            armed=False,
            dictionary=(b"\xd2\x3a\x91\x0e",),
        )
        spliced.run()
        token_seen = any(
            entry.packet.garbage == b"\xd2\x3a\x91\x0e"
            for entry in spliced.fuzzer.sniffer.sent()
        )
        assert token_seen
        # An empty dictionary leaves the RNG stream untouched, so the
        # plain campaign cannot have drawn the token by accident.
        assert not any(
            entry.packet.garbage == b"\xd2\x3a\x91\x0e"
            for entry in plain.fuzzer.sniffer.sent()
        )
