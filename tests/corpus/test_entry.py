"""Tests for corpus entries and their content-hash IDs."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpus.entry import (
    CorpusEntry,
    content_id,
    dict_to_entry,
    entry_from_packets,
    entry_to_dict,
    transition_token,
)
from repro.l2cap.packets import connection_request, echo_request


def _entry(**overrides) -> CorpusEntry:
    fields = dict(
        packets=("0c0001000800010001000400040070", "0a000100040001000278"),
        unlocked=("WAIT_CONNECT",),
        covered=("CLOSED", "CLOSED>WAIT_CONNECT", "WAIT_CONNECT"),
        device_id="D2",
        strategy="sequential",
        seed=41,
        armed=True,
    )
    fields.update(overrides)
    return CorpusEntry(**fields)


class TestContentId:
    def test_id_depends_only_on_replay_content(self):
        base = _entry()
        assert _entry(strategy="targeted", seed=99).entry_id == base.entry_id
        assert _entry(unlocked=("OPEN",)).entry_id == base.entry_id

    def test_id_changes_with_content(self):
        base = _entry()
        assert _entry(device_id="D5").entry_id != base.entry_id
        assert _entry(armed=False).entry_id != base.entry_id
        assert _entry(packets=base.packets[:1]).entry_id != base.entry_id

    def test_id_matches_helper(self):
        entry = _entry()
        assert entry.entry_id == content_id(
            entry.packets, entry.device_id, entry.armed
        )


class TestRoundTrip:
    def test_dict_round_trip(self):
        entry = _entry()
        assert dict_to_entry(entry_to_dict(entry)) == entry

    def test_stored_id_mismatch_rejected(self):
        record = entry_to_dict(_entry())
        record["id"] = "0" * 64
        with pytest.raises(ValueError, match="id mismatch"):
            dict_to_entry(record)

    def test_from_packets_normalises_coverage(self):
        entry = entry_from_packets(
            packets=[connection_request(psm=0x0001, scid=0x44, identifier=1)],
            unlocked=["WAIT_CONNECT", "WAIT_CONNECT"],
            covered=["WAIT_CONNECT", "CLOSED"],
            device_id="D2",
            strategy="sequential",
            seed=7,
            armed=False,
        )
        assert entry.unlocked == ("WAIT_CONNECT",)
        assert entry.covered == ("CLOSED", "WAIT_CONNECT")

    def test_decode_packets_restores_bytes(self):
        packets = [
            echo_request(b"ping", identifier=1),
            connection_request(psm=0x0001, scid=0x44, identifier=2),
        ]
        entry = entry_from_packets(
            packets, ["CLOSED"], ["CLOSED"], "D2", "sequential", 7, True
        )
        assert [p.encode() for p in entry.decode_packets()] == [
            p.encode() for p in packets
        ]


class TestHashStability:
    """The satellite property: IDs survive any JSON re-serialisation."""

    @given(
        packets=st.lists(st.binary(min_size=1, max_size=12), max_size=6),
        device_id=st.sampled_from(["D1", "D2", "D8"]),
        armed=st.booleans(),
        shuffled=st.randoms(use_true_random=False),
    )
    @settings(max_examples=60)
    def test_id_stable_under_key_reordering(
        self, packets, device_id, armed, shuffled
    ):
        entry = CorpusEntry(
            packets=tuple(blob.hex() for blob in packets),
            unlocked=("CLOSED",),
            covered=("CLOSED", transition_token("CLOSED", "OPEN")),
            device_id=device_id,
            strategy="breadth_first",
            seed=3,
            armed=armed,
        )
        record = entry_to_dict(entry)
        keys = list(record)
        shuffled.shuffle(keys)
        # Re-serialise with a hostile key order and no sorting at all:
        # the reloaded entry must land on the identical content hash.
        rendered = json.dumps({key: record[key] for key in keys})
        reloaded = dict_to_entry(json.loads(rendered))
        assert reloaded.entry_id == entry.entry_id
        assert reloaded == entry
