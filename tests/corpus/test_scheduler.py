"""Tests for the AFL-style energy scheduler."""

from __future__ import annotations

import pytest

from repro.core.state_guiding import STATE_PLAN
from repro.core.strategies import make_strategy
from repro.corpus.entry import entry_from_packets
from repro.corpus.scheduler import EnergyScheduler, prior_from_corpus
from repro.corpus.store import CorpusStore
from repro.l2cap.packets import echo_request
from repro.l2cap.states import ChannelState


class TestValidation:
    def test_explore_budget_validated(self):
        with pytest.raises(ValueError, match="explore_budget"):
            EnergyScheduler(explore_budget=0)

    def test_max_energy_validated(self):
        with pytest.raises(ValueError, match="max_energy"):
            EnergyScheduler(max_energy=0)

    def test_prior_accepts_state_names(self):
        scheduler = EnergyScheduler(prior_visits={"OPEN": 3, "CLOSED": 1})
        assert scheduler.prior_visits["OPEN"] == 3
        assert scheduler.prior_visits["CLOSED"] == 1


class TestPlan:
    def test_cold_start_keeps_base_order(self):
        plan = EnergyScheduler().plan(STATE_PLAN, {})
        assert plan == tuple(STATE_PLAN)

    def test_least_visited_first_counting_prior(self):
        scheduler = EnergyScheduler(
            prior_visits={state.value: 2 for state in STATE_PLAN}
            | {ChannelState.WAIT_MOVE.value: 0}
        )
        plan = scheduler.plan(STATE_PLAN, {})
        assert plan[0] is ChannelState.WAIT_MOVE

    def test_plan_is_permutation(self):
        plan = EnergyScheduler(prior_visits={"OPEN": 5}).plan(STATE_PLAN, {})
        assert sorted(plan, key=lambda s: s.value) == sorted(
            STATE_PLAN, key=lambda s: s.value
        )


class TestEnergy:
    def test_explore_mode_while_map_incomplete(self):
        scheduler = EnergyScheduler(explore_budget=1)
        visits = {STATE_PLAN[0]: 1}  # everything else unvisited
        scheduler.plan(STATE_PLAN, visits)
        for state in STATE_PLAN:
            assert scheduler.packets_per_command(state, 5) == 1

    def test_exploit_mode_boosts_rare_states(self):
        visits = {state: 4 for state in STATE_PLAN}
        visits[ChannelState.WAIT_MOVE] = 1
        scheduler = EnergyScheduler()
        scheduler.plan(STATE_PLAN, visits)
        rare = scheduler.packets_per_command(ChannelState.WAIT_MOVE, 5)
        common = scheduler.packets_per_command(ChannelState.CLOSED, 5)
        assert rare > common
        assert common >= 1

    def test_energy_clamped_to_max(self):
        visits = {state: 100 for state in STATE_PLAN}
        visits[ChannelState.WAIT_MOVE] = 1
        scheduler = EnergyScheduler(max_energy=4)
        scheduler.plan(STATE_PLAN, visits)
        assert scheduler.packets_per_command(ChannelState.WAIT_MOVE, 5) == 20

    def test_uniform_visits_get_base_budget(self):
        visits = {state: 3 for state in STATE_PLAN}
        scheduler = EnergyScheduler()
        scheduler.plan(STATE_PLAN, visits)
        for state in STATE_PLAN:
            assert scheduler.packets_per_command(state, 5) == 5

    def test_before_any_plan_returns_base(self):
        assert EnergyScheduler().packets_per_command(ChannelState.OPEN, 7) == 7

    def test_prior_skips_explore_mode(self):
        """A corpus covering the whole machine goes straight to exploit."""
        scheduler = EnergyScheduler(
            prior_visits={state.value: 1 for state in STATE_PLAN}
        )
        scheduler.plan(STATE_PLAN, {})
        assert scheduler.packets_per_command(STATE_PLAN[0], 5) == 5


class TestRegistry:
    def test_make_strategy_builds_scheduler(self):
        strategy = make_strategy("coverage_guided")
        assert isinstance(strategy, EnergyScheduler)
        assert strategy.name == "coverage_guided"

    def test_make_strategy_threads_prior(self):
        strategy = make_strategy("coverage_guided", prior_visits={"OPEN": 9})
        assert strategy.prior_visits["OPEN"] == 9

    def test_other_strategies_ignore_prior(self):
        strategy = make_strategy("sequential", prior_visits={"OPEN": 9})
        assert strategy.name == "sequential"


def test_prior_from_corpus(tmp_path):
    store = CorpusStore(tmp_path)
    store.add(
        entry_from_packets(
            [echo_request(b"x", identifier=1)],
            ["CLOSED", "CLOSED>OPEN"],
            ["CLOSED", "CLOSED>OPEN", "OPEN"],
            "D2",
            "sequential",
            7,
            False,
        )
    )
    prior = prior_from_corpus(store)
    assert prior == {"CLOSED": 1, "OPEN": 1}
    scheduler = EnergyScheduler(prior_visits=prior)
    assert scheduler.prior_visits["OPEN"] == 1
