"""Backend parity, concurrency and migration tests.

The contract under test: both storage backends answer every query
identically for the same operation history, occurrence counts stay
exact under concurrent writers, and ``migrate_to_sqlite`` converts a
file corpus without changing a byte of what it answers.
"""

from __future__ import annotations

import dataclasses
import json
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.corpus.backend import detect_backend_name, open_backend
from repro.corpus.entry import entry_from_packets
from repro.corpus.file_backend import FileCorpusBackend, entry_line
from repro.corpus.findings import (
    FindingDatabase,
    FindingRecord,
    record_to_dict,
    trigger_hash,
)
from repro.corpus.migrate import MigrationError, migrate_to_sqlite
from repro.corpus.sqlite_backend import SqliteCorpusBackend
from repro.corpus.store import CorpusStore
from repro.l2cap.packets import (
    configuration_request,
    connection_request,
    echo_request,
)

BACKENDS = ("file", "sqlite")


def _entry(tokens, packet_count=1, ident=1, device_id="D2", target="l2cap"):
    packets = [
        echo_request(b"x", identifier=ident + i) for i in range(packet_count)
    ]
    return entry_from_packets(
        packets=packets,
        unlocked=tokens,
        covered=tokens,
        device_id=device_id,
        strategy="sequential",
        seed=7,
        armed=False,
        target=target,
    )


def _record(**overrides) -> FindingRecord:
    packets = [
        connection_request(psm=0x0001, scid=0x40, identifier=1),
        configuration_request(dcid=0x0999, identifier=2),
    ]
    fields = dict(
        vendor="Google",
        vulnerability_class="DoS",
        trigger="CONFIGURATION_REQ(...)",
        trigger_hash=trigger_hash(packets),
        device_id="D2",
        state="WAIT_CONFIG",
        error_message="Connection Failed",
        packets=tuple(p.encode().hex() for p in packets),
        crash_id="bluedroid-cidp-null-deref",
        sim_time=12.5,
    )
    fields.update(overrides)
    return FindingRecord(**fields)


def _populate(backend) -> None:
    """One scripted operation history, applied to any backend."""
    backend.add_entry(_entry(["CLOSED", "CLOSED>OPEN"], packet_count=3))
    backend.add_entry(_entry(["CLOSED"], packet_count=1, ident=20))
    backend.add_entry(_entry(["OPEN"], packet_count=2, ident=30))
    backend.record_finding(_record())
    backend.record_finding(_record())  # duplicate: occurrences -> 2
    backend.record_finding(_record(vendor="Apple", state="OPEN"))
    backend.record_finding(
        _record(vulnerability_class="Crash", target="rfcomm")
    )


class TestParity:
    """Same history in, same answers out — on every backend pair."""

    @pytest.fixture()
    def pair(self, tmp_path):
        backends = {
            name: open_backend(tmp_path / name, name) for name in BACKENDS
        }
        for backend in backends.values():
            _populate(backend)
        return backends

    def test_entries_identical(self, pair):
        file_entries = pair["file"].entries()
        assert file_entries == pair["sqlite"].entries()
        assert len(file_entries) == 3

    def test_entries_byte_identical(self, pair):
        file_lines = [entry_line(e) for e in pair["file"].entries()]
        sqlite_lines = [entry_line(e) for e in pair["sqlite"].entries()]
        assert file_lines == sqlite_lines

    def test_coverage_and_frequencies_identical(self, pair):
        assert pair["file"].coverage() == pair["sqlite"].coverage()
        assert (
            pair["file"].state_frequencies()
            == pair["sqlite"].state_frequencies()
        )

    def test_finding_records_identical(self, pair):
        file_records = pair["file"].finding_records()
        assert file_records == pair["sqlite"].finding_records()
        assert len(file_records) == 3
        by_vendor = {record.vendor: record for record in file_records}
        assert by_vendor["Google"].occurrences == 2

    def test_query_findings_identical(self, pair):
        for filters in (
            {},
            {"vendor": "Google"},
            {"vulnerability_class": "Crash"},
            {"target": "rfcomm"},
            {"state": "OPEN"},
            {"vendor": "Google", "vulnerability_class": "DoS"},
            {"vendor": "Nokia"},
        ):
            file_hits = pair["file"].query_findings(**filters)
            assert file_hits == pair["sqlite"].query_findings(**filters), filters

    def test_minimize_and_canonical_identical(self, pair):
        file_canonical = pair["file"].minimize()
        sqlite_canonical = pair["sqlite"].minimize()
        assert file_canonical == sqlite_canonical
        assert pair["file"].canonical_entries() == pair[
            "sqlite"
        ].canonical_entries()

    def test_stats_identical(self, pair):
        for backend in pair.values():
            backend.minimize()
        assert pair["file"].stats() == pair["sqlite"].stats()
        stats = pair["file"].stats()
        assert stats.entry_count == 3
        assert stats.packet_total == 6
        assert stats.finding_count == 3
        assert stats.occurrence_total == 4
        assert not stats.canonical_stale

    def test_garbage_dictionary_identical(self, pair):
        trigger = configuration_request(dcid=0x0999, identifier=2)
        trigger.garbage = b"\xd2\x3a\x91\x0e"
        record = _record(
            vendor="Samsung", packets=tuple([trigger.encode().hex()])
        )
        for backend in pair.values():
            backend.record_finding(record)
        assert (
            pair["file"].garbage_dictionary()
            == pair["sqlite"].garbage_dictionary()
            == (b"\xd2\x3a\x91\x0e",)
        )


@pytest.mark.parametrize("name", BACKENDS)
class TestBackendBasics:
    def test_cold_corpus_reads_empty(self, tmp_path, name):
        backend = open_backend(tmp_path / "corpus", name)
        assert not backend.exists()
        assert backend.entries() == []
        assert backend.entry_count() == 0
        assert backend.coverage() == frozenset()
        assert backend.finding_records() == []
        assert backend.canonical_entries() == []
        assert not backend.canonical_is_stale()
        assert backend.stats().entry_count == 0

    def test_add_entry_idempotent(self, tmp_path, name):
        backend = open_backend(tmp_path, name)
        entry = _entry(["CLOSED"])
        assert backend.add_entry(entry)
        assert not backend.add_entry(entry)
        assert backend.entry_count() == 1

    def test_sha256_sized_seed_round_trips(self, tmp_path, name):
        """Fleet campaign seeds are SHA-256-derived integers, far past
        64 bits — both backends must store them losslessly."""
        backend = open_backend(tmp_path, name)
        entry = dataclasses.replace(_entry(["CLOSED"]), seed=2**255 + 19)
        assert backend.add_entry(entry)
        assert backend.entries() == [entry]

    def test_new_then_duplicate(self, tmp_path, name):
        backend = open_backend(tmp_path, name)
        assert backend.record_finding(_record()) == "new"
        assert backend.record_finding(_record()) == "duplicate"
        assert backend.finding_count() == 1
        assert backend.finding_records()[0].occurrences == 2

    def test_duplicate_keeps_first_record(self, tmp_path, name):
        backend = open_backend(tmp_path, name)
        backend.record_finding(_record(sim_time=1.0))
        backend.record_finding(
            dataclasses.replace(_record(), sim_time=99.0, device_id="D4")
        )
        record = backend.finding_records()[0]
        assert record.sim_time == 1.0
        assert record.device_id == "D2"
        assert record.occurrences == 2


@pytest.mark.parametrize("name", BACKENDS)
class TestConcurrency:
    """Exact counts and no lost writes under a thread-pool hammer."""

    def test_concurrent_bucket_bumps_count_exactly(self, tmp_path, name):
        backend = open_backend(tmp_path, name)
        workers, per_worker = 8, 25

        def hammer(_worker: int) -> None:
            # A fresh handle per worker, like separate fleet shards.
            local = open_backend(tmp_path, name)
            try:
                for _ in range(per_worker):
                    local.record_finding(_record())
            finally:
                local.close()

        with ThreadPoolExecutor(max_workers=workers) as pool:
            list(pool.map(hammer, range(workers)))
        records = backend.finding_records()
        assert len(records) == 1
        assert records[0].occurrences == workers * per_worker

    def test_concurrent_entry_adds_lose_nothing(self, tmp_path, name):
        backend = open_backend(tmp_path, name)
        entries = [
            _entry(["CLOSED"], packet_count=1 + (i % 4), ident=10 * i + 1)
            for i in range(40)
        ]

        def add_all(offset: int) -> None:
            local = open_backend(tmp_path, name)
            try:
                # Every worker adds every entry, rotated: maximal races
                # on the same content-addressed IDs.
                for i in range(len(entries)):
                    local.add_entry(entries[(i + offset) % len(entries)])
            finally:
                local.close()

        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(add_all, range(8)))
        stored = backend.entries()
        assert sorted(e.entry_id for e in stored) == sorted(
            e.entry_id for e in entries
        )


@pytest.mark.parametrize("name", BACKENDS)
class TestStaleness:
    def test_fresh_after_minimize(self, tmp_path, name):
        store = CorpusStore(tmp_path, backend=name)
        store.add(_entry(["CLOSED"]))
        canonical = store.minimize()
        assert not store.canonical_is_stale()
        assert store.seed_entries() == canonical

    def test_stale_after_new_entry(self, tmp_path, name):
        store = CorpusStore(tmp_path, backend=name)
        store.add(_entry(["CLOSED"], packet_count=2))
        store.minimize()
        store.add(_entry(["OPEN"], ident=40))
        assert store.canonical_is_stale()
        # Guided seeding must fall back to the live entry set.
        assert store.seed_entries() == store.entries()

    def test_no_canonical_is_not_stale(self, tmp_path, name):
        store = CorpusStore(tmp_path, backend=name)
        store.add(_entry(["CLOSED"]))
        assert not store.canonical_is_stale()
        assert store.seed_entries() == store.entries()


class TestFileStalenessMetadata:
    def test_missing_meta_is_conservatively_stale(self, tmp_path):
        backend = FileCorpusBackend(tmp_path)
        backend.add_entry(_entry(["CLOSED"]))
        backend.minimize()
        backend.canonical_meta_path.unlink()
        assert backend.canonical_is_stale()

    def test_corrupt_meta_is_conservatively_stale(self, tmp_path):
        backend = FileCorpusBackend(tmp_path)
        backend.add_entry(_entry(["CLOSED"]))
        backend.minimize()
        backend.canonical_meta_path.write_text("{]", encoding="utf-8")
        assert backend.canonical_is_stale()


class TestSqliteIncrementalMinimize:
    def test_incremental_matches_full_scan(self, tmp_path):
        sqlite = SqliteCorpusBackend(tmp_path / "sqlite")
        file = FileCorpusBackend(tmp_path / "file")
        first = [
            _entry(["CLOSED", "OPEN"], packet_count=5),
            _entry(["CLOSED"], packet_count=2, ident=20),
        ]
        for entry in first:
            sqlite.add_entry(entry)
            file.add_entry(entry)
        assert sqlite.minimize() == file.minimize()
        # Grow the corpus: a cheaper CLOSED witness and a new token.
        second = [
            _entry(["CLOSED"], packet_count=1, ident=40),
            _entry(["WAIT_CONFIG"], packet_count=3, ident=60),
        ]
        for entry in second:
            sqlite.add_entry(entry)
            file.add_entry(entry)
        # SQLite folds only the two new rows into its stored winner map;
        # the answer must still equal the file backend's full re-scan.
        assert sqlite.minimize() == file.minimize()
        canonical = sqlite.canonical_entries()
        # The new 1-packet CLOSED witness must have displaced the old
        # 2-packet one in the stored winner map.
        closed_costs = [
            entry.packet_count
            for entry in canonical
            if "CLOSED" in entry.covered
        ]
        assert min(closed_costs) == 1
        assert 2 not in closed_costs

    def test_cursor_advances_past_scanned_rows(self, tmp_path):
        backend = SqliteCorpusBackend(tmp_path)
        backend.add_entry(_entry(["CLOSED"]))
        backend.add_entry(_entry(["OPEN"], ident=20))
        backend.minimize()
        connection = backend._connect(create=False)
        cursor = int(backend._meta(connection, "cmin_last_seq"))
        max_seq = connection.execute(
            "SELECT MAX(seq) FROM entries"
        ).fetchone()[0]
        assert cursor == max_seq

    def test_minimize_without_write_leaves_cursor(self, tmp_path):
        backend = SqliteCorpusBackend(tmp_path)
        backend.add_entry(_entry(["CLOSED"]))
        backend.minimize(write=False)
        connection = backend._connect(create=False)
        assert backend._meta(connection, "cmin_last_seq") is None
        assert backend.canonical_entries() == []


class TestMigration:
    def _file_corpus(self, root):
        backend = FileCorpusBackend(root)
        _populate(backend)
        backend.minimize()
        return backend

    def test_migrate_round_trips_byte_equal(self, tmp_path):
        source = self._file_corpus(tmp_path)
        before_lines = [entry_line(e) for e in source.entries()]
        before_records = [record_to_dict(r) for r in source.finding_records()]
        before_canonical = [e.entry_id for e in source.canonical_entries()]

        report = migrate_to_sqlite(tmp_path)
        assert detect_backend_name(tmp_path) == "sqlite"
        assert report.entries == 3
        assert report.findings == 3
        migrated = open_backend(tmp_path)
        assert migrated.name == "sqlite"
        assert [entry_line(e) for e in migrated.entries()] == before_lines
        assert [
            record_to_dict(r) for r in migrated.finding_records()
        ] == before_records
        assert [
            e.entry_id for e in migrated.canonical_entries()
        ] == before_canonical
        assert not migrated.canonical_is_stale()

    def test_migrate_removes_source_layout(self, tmp_path):
        self._file_corpus(tmp_path)
        migrate_to_sqlite(tmp_path)
        assert not (tmp_path / "entries").exists()
        assert not (tmp_path / "findings").exists()
        assert not (tmp_path / "corpus.jsonl").exists()

    def test_migrate_twice_raises(self, tmp_path):
        self._file_corpus(tmp_path)
        migrate_to_sqlite(tmp_path)
        with pytest.raises(MigrationError, match="already"):
            migrate_to_sqlite(tmp_path)

    def test_migrate_empty_directory_creates_database(self, tmp_path):
        report = migrate_to_sqlite(tmp_path / "fresh")
        assert report.entries == 0
        assert detect_backend_name(tmp_path / "fresh") == "sqlite"

    def test_facades_work_identically_after_migration(self, tmp_path):
        self._file_corpus(tmp_path)
        before_store = CorpusStore(tmp_path)
        before = (
            before_store.entries(),
            before_store.stats(),
            FindingDatabase(tmp_path).records(),
        )
        migrate_to_sqlite(tmp_path)
        after_store = CorpusStore(tmp_path)
        after = (
            after_store.entries(),
            after_store.stats(),
            FindingDatabase(tmp_path).records(),
        )
        assert before == after

    def test_preserves_stale_flag(self, tmp_path):
        backend = FileCorpusBackend(tmp_path)
        backend.add_entry(_entry(["CLOSED"]))
        backend.minimize()
        backend.add_entry(_entry(["OPEN"], ident=20))
        assert backend.canonical_is_stale()
        migrate_to_sqlite(tmp_path)
        assert open_backend(tmp_path).canonical_is_stale()


class TestCampaignWriteBackParity:
    def test_identical_campaign_writes_identical_corpora(self, tmp_path):
        """The campaign write-back path works unchanged on either
        backend and produces the same corpus either way."""
        from repro.core.config import FuzzConfig
        from repro.testbed.profiles import D2
        from repro.testbed.session import FuzzSession

        file_dir = tmp_path / "file"
        sqlite_dir = tmp_path / "sqlite"
        # Flip autodetection for the second directory up front; the
        # session itself is backend-oblivious.
        migrate_to_sqlite(sqlite_dir)
        for root in (file_dir, sqlite_dir):
            report = FuzzSession(
                D2, FuzzConfig(max_packets=50_000), corpus_dir=str(root)
            ).run()
            assert report.vulnerability_found
        file_store = CorpusStore(file_dir)
        sqlite_store = CorpusStore(sqlite_dir)
        assert file_store.backend.name == "file"
        assert sqlite_store.backend.name == "sqlite"
        assert file_store.entries() == sqlite_store.entries()
        assert (
            FindingDatabase(file_dir).records()
            == FindingDatabase(sqlite_dir).records()
        )


class TestAutodetection:
    def test_default_is_file(self, tmp_path):
        assert detect_backend_name(tmp_path / "nope") == "file"
        assert open_backend(tmp_path).name == "file"

    def test_sqlite_database_wins(self, tmp_path):
        SqliteCorpusBackend(tmp_path).add_entry(_entry(["CLOSED"]))
        assert detect_backend_name(tmp_path) == "sqlite"
        assert CorpusStore(tmp_path).backend.name == "sqlite"
        assert FindingDatabase(tmp_path).backend.name == "sqlite"

    def test_unknown_name_raises(self, tmp_path):
        with pytest.raises(ValueError, match="unknown corpus backend"):
            open_backend(tmp_path, "parquet")

    def test_backend_instance_passes_through(self, tmp_path):
        backend = FileCorpusBackend(tmp_path)
        store = CorpusStore(tmp_path, backend=backend)
        database = FindingDatabase(tmp_path, backend=backend)
        assert store.backend is backend
        assert database.backend is backend


class TestSqliteQueriesUseIndex:
    def test_query_plan_hits_findings_index(self, tmp_path):
        backend = SqliteCorpusBackend(tmp_path)
        backend.record_finding(_record())
        connection = backend._connect(create=False)
        plan = "".join(
            row[-1]
            for row in connection.execute(
                "EXPLAIN QUERY PLAN SELECT data, occurrences FROM findings"
                " WHERE target = ? AND vendor = ?",
                ("l2cap", "Google"),
            )
        )
        assert "idx_findings_query" in plan

    def test_export_matches_file_backend(self, tmp_path):
        """CorpusStore.export_jsonl is backend-independent and atomic."""
        for name in BACKENDS:
            store = CorpusStore(tmp_path / name, backend=name)
            store.add(_entry(["CLOSED", "OPEN"], packet_count=2))
            store.add(_entry(["CLOSED"], ident=20))
            out = tmp_path / f"{name}.jsonl"
            assert store.export_jsonl(out) == 2
        file_dump = (tmp_path / "file.jsonl").read_text(encoding="utf-8")
        sqlite_dump = (tmp_path / "sqlite.jsonl").read_text(encoding="utf-8")
        assert file_dump == sqlite_dump
        for line in file_dump.splitlines():
            json.loads(line)
