"""Tests for the three baseline fuzzers' documented behaviours."""

from __future__ import annotations

import pytest

from repro.analysis.metrics import measure
from repro.analysis.state_coverage import state_coverage
from repro.baselines.bfuzz import BfuzzFuzzer
from repro.baselines.bss import BssFuzzer
from repro.baselines.defensics import DefensicsFuzzer
from repro.l2cap.states import ChannelState

from tests.conftest import make_rig


def _run(fuzzer_cls, max_packets=6000, **rig_kwargs):
    device, link, queue = make_rig(armed=False, **rig_kwargs)
    fuzzer = fuzzer_cls(queue)
    fuzzer.run(max_packets)
    return device, queue, measure(queue.sniffer, link.clock.now)


class TestBss:
    """BSS: zero malformed, zero rejections, three states (paper §IV.C/D)."""

    def test_generates_no_malformed_packets(self):
        _, _, eff = _run(BssFuzzer)
        assert eff.mp_ratio == 0.0

    def test_receives_no_rejections(self):
        _, _, eff = _run(BssFuzzer)
        assert eff.pr_ratio == 0.0

    def test_mutation_efficiency_is_zero(self):
        _, _, eff = _run(BssFuzzer)
        assert eff.mutation_efficiency == 0.0

    def test_covers_exactly_three_states(self):
        _, queue, _ = _run(BssFuzzer)
        covered = state_coverage(queue.sniffer)
        assert covered == frozenset(
            {
                ChannelState.CLOSED,
                ChannelState.WAIT_CONNECT,
                ChannelState.WAIT_CONFIG,
            }
        )

    def test_respects_budget(self):
        _, queue, _ = _run(BssFuzzer, max_packets=100)
        assert queue.sniffer.transmitted_count() <= 101

    def test_pps_model(self):
        assert BssFuzzer.pps == pytest.approx(1.95)


class TestBfuzz:
    """BFuzz: tiny MP ratio, huge PR ratio, six states."""

    def test_mp_ratio_band(self):
        _, _, eff = _run(BfuzzFuzzer, max_packets=12_000)
        assert 0.005 < eff.mp_ratio < 0.03  # paper: 1.50%

    def test_pr_ratio_band(self):
        _, _, eff = _run(BfuzzFuzzer, max_packets=12_000)
        assert eff.pr_ratio > 0.80  # paper: 91.60%

    def test_mutation_efficiency_tiny(self):
        _, _, eff = _run(BfuzzFuzzer, max_packets=12_000)
        assert eff.mutation_efficiency < 0.005  # paper: 0.12%

    def test_covers_six_states(self):
        _, queue, _ = _run(BfuzzFuzzer, max_packets=12_000)
        assert len(state_coverage(queue.sniffer)) == 6

    def test_replay_blob_elicits_no_responses(self):
        device, queue, _ = _run(BfuzzFuzzer, max_packets=1000)
        # The first 1000 packets are pure replay: no signaling responses.
        assert queue.sniffer.received_count() == 0


class TestDefensics:
    """Defensics: mostly-valid conformance suite, seven states."""

    def test_mp_ratio_band(self):
        _, _, eff = _run(DefensicsFuzzer, max_packets=6000)
        assert 0.01 < eff.mp_ratio < 0.05  # paper: 2.38%

    def test_pr_ratio_band(self):
        _, _, eff = _run(DefensicsFuzzer, max_packets=6000)
        assert eff.pr_ratio < 0.05  # paper: 1.73%

    def test_mutation_efficiency_band(self):
        _, _, eff = _run(DefensicsFuzzer, max_packets=6000)
        assert 0.005 < eff.mutation_efficiency < 0.05  # paper: 2.33%

    def test_covers_seven_states(self):
        _, queue, _ = _run(DefensicsFuzzer, max_packets=6000)
        assert len(state_coverage(queue.sniffer)) == 7

    def test_wait_disconnect_covered(self):
        _, queue, _ = _run(DefensicsFuzzer, max_packets=6000)
        assert ChannelState.WAIT_DISCONNECT in state_coverage(queue.sniffer)


class TestCrossFuzzerOrdering:
    """The paper's headline comparison invariants."""

    def test_state_coverage_ordering(self):
        coverages = {}
        for cls in (DefensicsFuzzer, BfuzzFuzzer, BssFuzzer):
            _, queue, _ = _run(cls, max_packets=8000)
            coverages[cls.name] = len(state_coverage(queue.sniffer))
        assert coverages["Defensics"] > coverages["BFuzz"] > coverages["BSS"]

    def test_throughput_models_match_paper(self):
        assert DefensicsFuzzer.pps == pytest.approx(3.37)
        assert BfuzzFuzzer.pps == pytest.approx(454.54)
