"""Tests for fuzzing sessions against testbed profiles."""

from __future__ import annotations

import pytest

from repro.core.config import FuzzConfig
from repro.testbed.profiles import D2, D4
from repro.testbed.session import FuzzSession, L2FUZZ_PPS, run_campaign


class TestFuzzSession:
    def test_session_wires_everything(self):
        session = FuzzSession(D2, FuzzConfig(max_packets=200), armed=False)
        report = session.run()
        assert report.target_name == "D2 (Pixel 3)"
        assert report.packets_sent >= 200

    def test_armed_d2_finds_the_dos(self):
        report = run_campaign(D2, FuzzConfig(max_packets=50_000))
        assert report.vulnerability_found
        assert report.as_table6_row()["description"] == "DoS"

    def test_disarmed_d2_runs_to_budget(self):
        report = run_campaign(D2, FuzzConfig(max_packets=1000), armed=False)
        assert not report.vulnerability_found
        assert report.packets_sent >= 1000

    def test_hardened_d4_survives(self):
        report = run_campaign(D4, FuzzConfig(max_packets=2000))
        assert not report.vulnerability_found

    def test_zero_latency_throughput_matches_pps_model(self):
        report = run_campaign(
            D2, FuzzConfig(max_packets=1000), armed=False, zero_latency=True
        )
        assert report.efficiency.packets_per_second == pytest.approx(
            L2FUZZ_PPS, rel=1e-6
        )

    def test_device_latency_slows_detection_clock(self):
        fast = run_campaign(
            D2, FuzzConfig(max_packets=300), armed=False, zero_latency=True
        )
        slow = run_campaign(
            D2, FuzzConfig(max_packets=300), armed=False, zero_latency=False
        )
        assert slow.elapsed_seconds > fast.elapsed_seconds

    def test_auto_reset_session_collects_repeat_findings(self):
        session = FuzzSession(
            D2, FuzzConfig(max_packets=2000), armed=True, auto_reset=True
        )
        report = session.run()
        assert len(report.findings) >= 2
        assert session.device.reset_count >= 2
