"""Tests for the Table V device profiles."""

from __future__ import annotations

import pytest

from repro.l2cap.constants import Psm
from repro.testbed.profiles import (
    ALL_PROFILES,
    D2,
    D5,
    D8,
    PROFILES_BY_ID,
    table5_rows,
)


class TestTable5:
    def test_eight_devices(self):
        assert len(ALL_PROFILES) == 8
        assert list(PROFILES_BY_ID) == [f"D{i}" for i in range(1, 9)]

    def test_rows_carry_table5_columns(self):
        rows = table5_rows()
        assert len(rows) == 8
        for row in rows:
            for column in ("no", "type", "vendor", "name", "year", "model",
                           "chip", "os_or_fw", "bt_stack", "bt_version"):
                assert column in row

    def test_d2_is_the_reference_pixel3(self):
        assert D2.name == "Pixel 3"
        assert D2.bt_stack == "BlueDroid"
        assert D2.os_or_fw == "Android 11.0.1"

    def test_stack_families_match_paper(self):
        stacks = {p.device_id: p.bt_stack for p in ALL_PROFILES}
        assert stacks == {
            "D1": "BlueDroid",
            "D2": "BlueDroid",
            "D3": "BlueDroid",
            "D4": "iOS stack",
            "D5": "RTKit stack",
            "D6": "BTW",
            "D7": "Windows stack",
            "D8": "BlueZ",
        }

    def test_d5_has_six_service_ports(self):
        """Paper §IV.B: D5 supports six service ports."""
        assert len(D5.services) == 6

    def test_d8_has_thirteen_service_ports(self):
        """Paper §IV.B: D8 supports thirteen service ports."""
        assert len(D8.services) == 13

    def test_every_device_offers_pairing_free_sdp(self):
        for profile in ALL_PROFILES:
            sdp = next(s for s in profile.services if s.psm == Psm.SDP)
            assert not sdp.requires_pairing

    def test_unique_mac_addresses(self):
        macs = {p.mac_address for p in ALL_PROFILES}
        assert len(macs) == 8


class TestVulnerabilityAssignment:
    def test_vulnerable_devices_match_table6(self):
        vulnerable = {
            p.device_id for p in ALL_PROFILES if p.vulnerabilities
        }
        assert vulnerable == {"D1", "D2", "D3", "D5", "D8"}

    def test_hardened_stacks_reject_garbage(self):
        for device_id in ("D4", "D6", "D7"):
            profile = PROFILES_BY_ID[device_id]
            assert profile.personality.rejects_garbage_tail

    def test_vulnerable_stacks_parse_garbage(self):
        for device_id in ("D1", "D2", "D3", "D5", "D8"):
            profile = PROFILES_BY_ID[device_id]
            assert not profile.personality.rejects_garbage_tail

    def test_d3_lacks_the_config_quirk(self):
        """Samsung's fork closed the D1/D2 path; its bug is elsewhere."""
        assert not PROFILES_BY_ID["D3"].personality.accepts_unallocated_cidp
        assert PROFILES_BY_ID["D1"].personality.accepts_unallocated_cidp


class TestBuild:
    def test_build_produces_wired_device(self):
        device = D2.build()
        assert device.meta.name == "Pixel 3"
        assert device.is_alive

    def test_zero_latency_strips_response_latency(self):
        device = D2.build(zero_latency=True)
        assert device.personality.response_latency == 0.0
        assert D2.personality.response_latency > 0.0  # profile untouched

    def test_disarmed_build(self):
        device = D2.build(armed=False)
        assert not device.engine.armed
