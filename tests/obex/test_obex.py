"""Tests for the OBEX codec, server, and the full Fig. 1 stack vertical."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.packet_queue import PacketQueue
from repro.errors import PacketDecodeError
from repro.hci.transport import VirtualLink
from repro.l2cap.constants import CommandCode, ConnectionResult, Psm
from repro.l2cap.packets import L2capPacket, connection_request
from repro.obex.constants import HeaderId, Opcode, ResponseCode
from repro.obex.packets import (
    ObexHeader,
    ObexPacket,
    connect_request,
    decode_headers,
    disconnect_request,
    get_request,
    put_request,
)
from repro.obex.server import ObexServer
from repro.rfcomm.frames import RfcommFrame, sabm, uih
from repro.rfcomm.mux import RfcommMux
from repro.stack.device import DeviceMeta, VirtualDevice
from repro.stack.services import ServiceDirectory, ServiceRecord
from repro.stack.vendors import BLUEDROID


class TestHeaderCodec:
    def test_unicode_header_round_trip(self):
        raw = ObexHeader(HeaderId.NAME, "photo.jpg").encode()
        headers = decode_headers(raw)
        assert headers[0].value == "photo.jpg"

    def test_bytes_header_round_trip(self):
        raw = ObexHeader(HeaderId.END_OF_BODY, b"\x00\x01\x02").encode()
        assert decode_headers(raw)[0].value == b"\x00\x01\x02"

    def test_four_byte_header_round_trip(self):
        raw = ObexHeader(HeaderId.LENGTH, 123456).encode()
        assert decode_headers(raw)[0].value == 123456

    def test_one_byte_header_round_trip(self):
        raw = ObexHeader(HeaderId.SRM, 1).encode()
        assert decode_headers(raw)[0].value == 1

    def test_truncated_header_raises(self):
        with pytest.raises(PacketDecodeError):
            decode_headers(bytes([HeaderId.NAME, 0x00]))

    @given(st.text(max_size=20), st.binary(max_size=40))
    @settings(max_examples=100)
    def test_mixed_headers_property(self, name, body):
        raw = (
            ObexHeader(HeaderId.NAME, name).encode()
            + ObexHeader(HeaderId.BODY, body).encode()
        )
        headers = decode_headers(raw)
        assert headers[0].value == name
        assert headers[1].value == body


class TestPacketCodec:
    def test_connect_round_trip(self):
        packet = connect_request(max_packet=0x1000)
        decoded = ObexPacket.decode(packet.encode())
        assert decoded.code == Opcode.CONNECT
        assert decoded.connect_extras == (0x10, 0x00, 0x1000)

    def test_put_round_trip(self):
        packet = put_request("a.txt", b"hello")
        decoded = ObexPacket.decode(packet.encode())
        assert decoded.header(HeaderId.NAME) == "a.txt"
        assert decoded.header(HeaderId.END_OF_BODY) == b"hello"
        assert decoded.header(HeaderId.LENGTH) == 5

    def test_length_lie_rejected(self):
        raw = bytearray(get_request("x").encode())
        raw[2] += 1
        with pytest.raises(PacketDecodeError):
            ObexPacket.decode(bytes(raw))

    def test_missing_header_returns_none(self):
        assert disconnect_request().header(HeaderId.NAME) is None


class TestObexServer:
    def _connected_server(self):
        server = ObexServer()
        response = ObexPacket.decode(
            server.handle_request(connect_request().encode()),
            has_connect_extras=True,
        )
        assert response.code == ResponseCode.SUCCESS
        return server

    def test_connect_advertises_mtu(self):
        server = ObexServer(max_packet=0x0800)
        response = ObexPacket.decode(
            server.handle_request(connect_request().encode()),
            has_connect_extras=True,
        )
        assert response.connect_extras[2] == 0x0800

    def test_put_then_get(self):
        server = self._connected_server()
        put_rsp = ObexPacket.decode(
            server.handle_request(put_request("doc.txt", b"contents").encode())
        )
        assert put_rsp.code == ResponseCode.SUCCESS
        assert server.inbox["doc.txt"] == b"contents"
        get_rsp = ObexPacket.decode(
            server.handle_request(get_request("doc.txt").encode())
        )
        assert get_rsp.code == ResponseCode.SUCCESS
        assert get_rsp.header(HeaderId.END_OF_BODY) == b"contents"

    def test_put_before_connect_forbidden(self):
        server = ObexServer()
        response = ObexPacket.decode(
            server.handle_request(put_request("x", b"y").encode())
        )
        assert response.code == ResponseCode.FORBIDDEN

    def test_get_missing_object_not_found(self):
        server = self._connected_server()
        response = ObexPacket.decode(
            server.handle_request(get_request("nope").encode())
        )
        assert response.code == ResponseCode.NOT_FOUND

    def test_garbage_request_bad_request(self):
        server = self._connected_server()
        response = ObexPacket.decode(server.handle_request(b"\xff\xff"))
        assert response.code == ResponseCode.BAD_REQUEST

    def test_put_without_body_length_required(self):
        server = self._connected_server()
        packet = ObexPacket(Opcode.PUT_FINAL, (ObexHeader(HeaderId.NAME, "x"),))
        response = ObexPacket.decode(server.handle_request(packet.encode()))
        assert response.code == ResponseCode.LENGTH_REQUIRED

    def test_disconnect(self):
        server = self._connected_server()
        response = ObexPacket.decode(
            server.handle_request(disconnect_request().encode())
        )
        assert response.code == ResponseCode.SUCCESS
        assert not server.connected


class TestFullStackVertical:
    """The paper's §II.A file-transfer scenario: OBEX/RFCOMM/L2CAP."""

    def _build_stack(self):
        obex = ObexServer()
        mux = RfcommMux(server_channels=(1,), service_handlers={3: obex.handle_request})
        services = ServiceDirectory(
            [
                ServiceRecord(Psm.SDP, "SDP"),
                ServiceRecord(Psm.RFCOMM, "OBEX Object Push"),
            ]
        )
        device = VirtualDevice(
            meta=DeviceMeta("AA:BB:CC:00:00:20", "ftp-target", "laptop"),
            personality=BLUEDROID,
            services=services,
        )
        device.engine.data_handlers[Psm.RFCOMM] = mux.handle_payload
        link = VirtualLink(clock=device.clock)
        device.attach_to(link)
        return obex, mux, PacketQueue(link)

    def _rfcomm_exchange(self, queue, target_cid, our_cid, frame):
        packet = L2capPacket(
            code=0, identifier=0, header_cid=target_cid,
            tail=frame.encode(), fill_defaults=False,
        )
        for response in queue.exchange(packet):
            if response.header_cid == our_cid:
                return RfcommFrame.decode(response.tail)
        return None

    def test_file_push_through_all_three_layers(self):
        obex, mux, queue = self._build_stack()
        # Layer 1: L2CAP channel to PSM 0x0003.
        responses = queue.exchange(connection_request(psm=Psm.RFCOMM, scid=0x00A0))
        rsp = next(r for r in responses if r.code == CommandCode.CONNECTION_RSP)
        assert rsp.fields["result"] == ConnectionResult.SUCCESS
        target_cid = rsp.fields["dcid"]
        # Layer 2: RFCOMM control + data DLCI.
        assert self._rfcomm_exchange(queue, target_cid, 0x00A0, sabm(0)) is not None
        assert self._rfcomm_exchange(queue, target_cid, 0x00A0, sabm(3)) is not None
        # Layer 3: OBEX connect + put.
        reply = self._rfcomm_exchange(
            queue, target_cid, 0x00A0, uih(3, connect_request().encode())
        )
        obex_rsp = ObexPacket.decode(reply.payload, has_connect_extras=True)
        assert obex_rsp.code == ResponseCode.SUCCESS
        reply = self._rfcomm_exchange(
            queue, target_cid, 0x00A0,
            uih(3, put_request("notes.txt", b"paper section II.A").encode()),
        )
        assert ObexPacket.decode(reply.payload).code == ResponseCode.SUCCESS
        assert obex.inbox["notes.txt"] == b"paper section II.A"
