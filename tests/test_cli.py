"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestDevices:
    def test_lists_eight_devices(self, capsys):
        assert main(["devices"]) == 0
        out = capsys.readouterr().out
        for device_id in ("D1", "D2", "D8"):
            assert device_id in out
        assert "bluedroid-cidp-null-deref" in out


class TestScan:
    def test_scan_prints_ports(self, capsys):
        assert main(["scan", "D2"]) == 0
        out = capsys.readouterr().out
        assert "Pixel 3" in out
        assert "0x0001" in out
        assert "open (no pairing)" in out

    def test_scan_is_case_insensitive(self, capsys):
        assert main(["scan", "d5"]) == 0
        assert "Airpods" in capsys.readouterr().out

    def test_unknown_device_exits(self):
        with pytest.raises(SystemExit):
            main(["scan", "D99"])


class TestFuzz:
    def test_armed_fuzz_finds_d2_bug(self, capsys):
        assert main(["fuzz", "D2", "--budget", "50000"]) == 0
        out = capsys.readouterr().out
        assert "DoS" in out
        assert "WAIT_CONFIG" in out

    def test_disarmed_fuzz_returns_zero(self, capsys):
        assert main(["fuzz", "D2", "--budget", "1000", "--disarm"]) == 0
        out = capsys.readouterr().out
        assert "No vulnerability detected." in out

    def test_clean_device_returns_one(self, capsys):
        assert main(["fuzz", "D4", "--budget", "1500"]) == 1

    def test_save_trace(self, tmp_path, capsys):
        path = tmp_path / "d2.jsonl"
        assert (
            main(["fuzz", "D2", "--budget", "800", "--disarm",
                  "--save-trace", str(path)])
            == 0
        )
        assert path.exists()
        assert len(path.read_text().splitlines()) > 800

    def test_show_log(self, capsys):
        main(["fuzz", "D2", "--budget", "300", "--disarm", "--show-log"])
        out = capsys.readouterr().out
        assert '"phase": "scan"' in out


class TestCompare:
    def test_compare_prints_table7_shape(self, capsys):
        assert main(["compare", "--budget", "4000"]) == 0
        out = capsys.readouterr().out
        for name in ("L2Fuzz", "Defensics", "BFuzz", "BSS"):
            assert name in out
        assert "/19" in out
