"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.core.config import FuzzConfig
from repro.testbed.profiles import D2
from repro.testbed.session import run_campaign


class TestDevices:
    def test_lists_eight_devices(self, capsys):
        assert main(["devices"]) == 0
        out = capsys.readouterr().out
        for device_id in ("D1", "D2", "D8"):
            assert device_id in out
        assert "bluedroid-cidp-null-deref" in out


class TestScan:
    def test_scan_prints_ports(self, capsys):
        assert main(["scan", "D2"]) == 0
        out = capsys.readouterr().out
        assert "Pixel 3" in out
        assert "0x0001" in out
        assert "open (no pairing)" in out

    def test_scan_is_case_insensitive(self, capsys):
        assert main(["scan", "d5"]) == 0
        assert "Airpods" in capsys.readouterr().out

    def test_unknown_device_exits(self):
        with pytest.raises(SystemExit):
            main(["scan", "D99"])


class TestFuzz:
    def test_armed_fuzz_finds_d2_bug(self, capsys):
        assert main(["fuzz", "D2", "--budget", "50000"]) == 0
        out = capsys.readouterr().out
        assert "DoS" in out
        assert "WAIT_CONFIG" in out

    def test_disarmed_fuzz_returns_zero(self, capsys):
        assert main(["fuzz", "D2", "--budget", "1000", "--disarm"]) == 0
        out = capsys.readouterr().out
        assert "No vulnerability detected." in out

    def test_fuzz_target_flag_runs_each_protocol(self, capsys):
        # D5's RFCOMM mux hides the injected UIH overflow: exit code 0.
        assert main(["fuzz", "D5", "--target", "rfcomm",
                     "--budget", "3000"]) == 0
        out = capsys.readouterr().out
        assert "Protocol: rfcomm" in out
        assert "Crash" in out
        # SDP and OBEX campaigns run end to end (clean servers: exit 1).
        for target, state in (("sdp", "SDP_SEARCHED"), ("obex", "OBEX_CONNECTED")):
            assert main(["fuzz", "D2", "--target", target,
                         "--budget", "1500"]) == 1
            out = capsys.readouterr().out
            assert f"Protocol: {target}" in out
            assert state in out

    def test_clean_device_returns_one(self, capsys):
        assert main(["fuzz", "D4", "--budget", "1500"]) == 1

    def test_save_trace(self, tmp_path, capsys):
        path = tmp_path / "d2.jsonl"
        assert (
            main(["fuzz", "D2", "--budget", "800", "--disarm",
                  "--save-trace", str(path)])
            == 0
        )
        assert path.exists()
        assert len(path.read_text().splitlines()) > 800

    def test_show_log(self, capsys):
        main(["fuzz", "D2", "--budget", "300", "--disarm", "--show-log"])
        out = capsys.readouterr().out
        assert '"phase": "scan"' in out


class TestCompare:
    def test_compare_prints_table7_shape(self, capsys):
        assert main(["compare", "--budget", "4000"]) == 0
        out = capsys.readouterr().out
        for name in ("L2Fuzz", "Defensics", "BFuzz", "BSS"):
            assert name in out
        assert "/19" in out


_FLEET_ARGS = [
    "fleet",
    "--profiles", "2",
    "--strategies", "breadth_first,targeted",
    "--workers", "2",
    "--seed", "7",
    "--budget", "800",
]


class TestFleet:
    def test_markdown_report(self, capsys):
        assert main(_FLEET_ARGS) == 0
        out = capsys.readouterr().out
        assert "# Fleet report (seed 7, 2 worker(s))" in out
        assert "## Merged coverage map" in out
        assert "## Per-strategy efficiency" in out
        assert "breadth_first" in out and "targeted" in out

    def test_json_report_schema(self, capsys):
        assert main(_FLEET_ARGS + ["--format", "json"]) == 0
        decoded = json.loads(capsys.readouterr().out)
        assert set(decoded) == {
            "fleet_seed",
            "workers",
            "campaign_count",
            "total_packets",
            "simulated_makespan_seconds",
            "campaigns_per_simulated_second",
            "targets",
            "merged_state_count",
            "best_single_coverage",
            "coverage_map",
            "state_spaces",
            "findings",
            "quarantined",
            "strategy_table",
            "campaigns",
        }
        assert decoded["fleet_seed"] == 7
        assert decoded["campaign_count"] == 4  # 2 profiles x 2 strategies
        for campaign in decoded["campaigns"]:
            assert {
                "index",
                "device_id",
                "strategy",
                "target",
                "seed",
                "target_name",
                "packets_sent",
                "sweeps_completed",
                "elapsed_seconds",
                "covered_states",
                "state_visits",
                "transition_visits",
                "findings",
                "mutation_efficiency",
            } == set(campaign)

    def test_two_runs_identical(self, capsys):
        main(_FLEET_ARGS + ["--format", "json"])
        first = capsys.readouterr().out
        main(_FLEET_ARGS + ["--format", "json"])
        second = capsys.readouterr().out
        assert first == second

    def test_workers_auto_and_batch(self, capsys):
        main(_FLEET_ARGS + ["--format", "json"])
        reference = json.loads(capsys.readouterr().out)
        args = [
            "fleet",
            "--profiles", "2",
            "--strategies", "breadth_first,targeted",
            "--seed", "7",
            "--budget", "800",
        ]
        assert main(args + ["--workers", "auto", "--batch", "1",
                            "--format", "json"]) == 0
        decoded = json.loads(capsys.readouterr().out)
        # Worker count and shard size must not change the fleet's
        # findings/coverage — only the schedule summary may differ.
        for key in ("workers", "simulated_makespan_seconds",
                    "campaigns_per_simulated_second"):
            reference.pop(key)
            decoded.pop(key)
        assert decoded == reference

    def test_workers_validation(self):
        with pytest.raises(SystemExit, match="--workers"):
            main(["fleet", "--workers", "0", "--budget", "5"])
        with pytest.raises(SystemExit, match="--workers"):
            main(["fleet", "--workers", "many", "--budget", "5"])

    def test_batch_validation(self):
        with pytest.raises(SystemExit, match="--batch"):
            main(["fleet", "--batch", "0", "--budget", "5"])

    def test_profiles_by_id(self, capsys):
        assert main(
            ["fleet", "--profiles", "D2,D4", "--budget", "600"]
        ) == 0
        out = capsys.readouterr().out
        assert "D2 (Pixel 3)" in out
        assert "D4 (iPhone 6S)" in out

    def test_output_file(self, tmp_path, capsys):
        path = tmp_path / "fleet.json"
        assert main(
            _FLEET_ARGS + ["--format", "json", "--output", str(path)]
        ) == 0
        assert "written to" in capsys.readouterr().out
        assert json.loads(path.read_text())["fleet_seed"] == 7

    def test_multi_protocol_fleet(self, capsys):
        assert main(
            ["fleet", "--profiles", "D2,D5", "--targets", "l2cap,rfcomm",
             "--budget", "1000"]
        ) == 0
        out = capsys.readouterr().out
        assert "## Merged coverage map — l2cap (" in out
        assert "## Merged coverage map — rfcomm (" in out
        assert "| rfcomm |" in out  # a deduped RFCOMM finding row

    def test_unknown_strategy_exits(self):
        with pytest.raises(SystemExit):
            main(["fleet", "--strategies", "depth_charge"])

    def test_unknown_fleet_target_lists_valid_names(self, capsys):
        with pytest.raises(SystemExit, match="l2cap, rfcomm, sdp, obex"):
            main(["fleet", "--targets", "zigbee"])

    def test_bad_profile_count_exits(self):
        with pytest.raises(SystemExit):
            main(["fleet", "--profiles", "0"])

    def test_unknown_target_state_exits(self):
        with pytest.raises(SystemExit):
            main(["fleet", "--target-state", "WAIT_FOREVER"])

    def test_unroutable_target_state_exits(self):
        # WAIT_CONNECT_RSP is a real state, but initiator-only: the
        # targeted strategy cannot route a slave target into it.
        with pytest.raises(SystemExit, match="no acceptor-side route"):
            main(
                ["fleet", "--strategies", "targeted",
                 "--target-state", "WAIT_CONNECT_RSP"]
            )

    def test_zero_workers_exits(self):
        with pytest.raises(SystemExit, match="--workers"):
            main(["fleet", "--workers", "0"])

    def test_zero_budget_exits(self):
        with pytest.raises(SystemExit, match="--budget"):
            main(["fleet", "--budget", "0"])


class TestReplayCommand:
    def _saved_trace(self, tmp_path, disarm=False):
        path = tmp_path / "trace.jsonl"
        argv = ["fuzz", "D2", "--budget", "5000", "--save-trace", str(path)]
        if disarm:
            argv[3] = "800"
            argv.insert(2, "--disarm")
        main(argv)
        return path

    def test_crashing_trace_reproduces(self, tmp_path, capsys):
        path = self._saved_trace(tmp_path)
        assert main(["replay", str(path), "--device", "D2"]) == 0
        out = capsys.readouterr().out
        assert "crash reproduced" in out
        assert "bluedroid-cidp-null-deref" in out

    def test_minimize_prints_triage_report(self, tmp_path, capsys):
        path = self._saved_trace(tmp_path)
        assert main(["replay", str(path), "--device", "D2", "--minimize"]) == 0
        out = capsys.readouterr().out
        assert "Minimal reproducer" in out
        assert "<== trigger" in out

    def test_benign_trace_returns_one(self, tmp_path, capsys):
        path = self._saved_trace(tmp_path, disarm=True)
        assert main(["replay", str(path), "--device", "D2", "--disarm"]) == 1
        assert "no crash" in capsys.readouterr().out

    def test_missing_trace_exits(self, tmp_path):
        with pytest.raises(SystemExit, match="cannot read trace"):
            main(["replay", str(tmp_path / "nope.jsonl")])


class TestCorpusCommands:
    @pytest.fixture()
    def corpus_dir(self, tmp_path, capsys):
        root = tmp_path / "corpus"
        main(["fuzz", "D2", "--budget", "5000", "--corpus", str(root)])
        capsys.readouterr()  # drop the fuzz output
        return root

    def test_fuzz_strategy_flag(self, capsys):
        assert (
            main(
                ["fuzz", "D2", "--budget", "800", "--disarm",
                 "--strategy", "coverage_guided"]
            )
            == 0
        )
        assert "State coverage" in capsys.readouterr().out

    def test_fuzz_unknown_strategy_exits(self, capsys):
        # argparse generates the choices from the strategy registry and
        # lists the valid names on a bad value.
        with pytest.raises(SystemExit):
            main(["fuzz", "D2", "--strategy", "depth_charge"])
        err = capsys.readouterr().err
        assert "invalid choice: 'depth_charge'" in err
        assert "sequential" in err and "coverage_guided" in err

    def test_fuzz_unknown_target_exits(self, capsys):
        with pytest.raises(SystemExit):
            main(["fuzz", "D2", "--target", "zigbee"])
        err = capsys.readouterr().err
        assert "invalid choice: 'zigbee'" in err
        assert "l2cap" in err and "obex" in err

    def test_stats(self, corpus_dir, capsys):
        assert main(["corpus", "stats", str(corpus_dir)]) == 0
        out = capsys.readouterr().out
        assert "entries:" in out
        assert "findings: 1 bucket(s)" in out
        assert "bluedroid-cidp-null-deref" in out

    def test_minimize(self, corpus_dir, capsys):
        assert main(["corpus", "minimize", str(corpus_dir)]) == 0
        assert "canonical" in capsys.readouterr().out
        assert (corpus_dir / "corpus.jsonl").is_file()

    def test_replay_reports_no_regressions(self, corpus_dir, capsys):
        assert main(["corpus", "replay", str(corpus_dir)]) == 0
        out = capsys.readouterr().out
        assert "0 regression(s)" in out
        assert "REGRESSION" not in out

    def test_replay_entries_flag(self, corpus_dir, capsys):
        assert main(["corpus", "replay", str(corpus_dir), "--entries"]) == 0
        assert "entry " in capsys.readouterr().out

    def test_export(self, corpus_dir, tmp_path, capsys):
        out_path = tmp_path / "all.jsonl"
        assert main(
            ["corpus", "export", str(corpus_dir), "--output", str(out_path)]
        ) == 0
        assert out_path.is_file()
        assert json.loads(out_path.read_text().splitlines()[0])["device_id"] == "D2"

    def test_missing_corpus_exits(self, tmp_path):
        with pytest.raises(SystemExit, match="no corpus"):
            main(["corpus", "stats", str(tmp_path / "empty")])

    def test_migrate_then_all_commands_work(self, corpus_dir, tmp_path, capsys):
        before = capsys.readouterr()  # noqa: F841 - drain fixture output
        assert main(["corpus", "stats", str(corpus_dir)]) == 0
        stats_before = capsys.readouterr().out
        assert "[file backend]" in stats_before

        assert main(["corpus", "migrate", str(corpus_dir)]) == 0
        assert "migrated to sqlite" in capsys.readouterr().out
        assert (corpus_dir / "corpus.sqlite3").is_file()
        assert not (corpus_dir / "entries").exists()

        # Every corpus command keeps working on the migrated directory,
        # and stats answers identically (modulo the backend tag).
        assert main(["corpus", "stats", str(corpus_dir)]) == 0
        stats_after = capsys.readouterr().out
        assert "[sqlite backend]" in stats_after
        assert stats_after.replace("[sqlite backend]", "[file backend]") == (
            stats_before
        )
        assert main(["corpus", "minimize", str(corpus_dir)]) == 0
        assert "canonical" in capsys.readouterr().out
        assert main(["corpus", "replay", str(corpus_dir)]) == 0
        assert "0 regression(s)" in capsys.readouterr().out
        out_path = tmp_path / "migrated.jsonl"
        assert main(
            ["corpus", "export", str(corpus_dir), "--output", str(out_path)]
        ) == 0
        assert out_path.is_file()

    def test_migrate_twice_exits(self, corpus_dir, capsys):
        assert main(["corpus", "migrate", str(corpus_dir)]) == 0
        capsys.readouterr()
        with pytest.raises(SystemExit, match="already an SQLite corpus"):
            main(["corpus", "migrate", str(corpus_dir)])

    def test_fleet_corpus_flag(self, tmp_path, capsys):
        root = tmp_path / "fleet-corpus"
        assert main(_FLEET_ARGS + ["--corpus", str(root)]) == 0
        capsys.readouterr()
        assert main(["corpus", "stats", str(root)]) == 0
        assert "coverage:" in capsys.readouterr().out


class TestSequentialRegression:
    """The default strategy must reproduce the seed campaign exactly.

    Golden values were captured from the pre-strategy seed revision:
    the strategy refactor must not move a single field.
    """

    def test_armed_d2_report_field_for_field(self):
        report = run_campaign(D2, FuzzConfig(max_packets=50_000))
        assert report.strategy == "sequential"
        assert report.packets_sent == 226
        assert report.sweeps_completed == 0
        assert report.elapsed_seconds == pytest.approx(112.931076, abs=1e-6)
        assert report.efficiency.transmitted == 226
        assert report.efficiency.malformed == 151
        assert report.efficiency.received == 145
        assert report.efficiency.rejections == 54
        assert sorted(state.value for state in report.covered_states) == [
            "CLOSED",
            "WAIT_CONFIG",
            "WAIT_CONFIG_REQ_RSP",
            "WAIT_CONNECT",
            "WAIT_CREATE",
        ]
        assert len(report.findings) == 1
        finding = report.findings[0]
        assert finding.error_message == "Connection Failed"
        assert finding.state == "WAIT_CONFIG"
        assert finding.trigger == (
            "CONFIGURATION_REQ(id=225, dcid=0xE6EE, flags=0x0000) "
            "garbage=1ca550ece866149dd33236408c0f"
        )

    def test_disarmed_d2_report_field_for_field(self):
        report = run_campaign(
            D2, FuzzConfig(max_packets=2_000), armed=False
        )
        assert report.strategy == "sequential"
        assert report.packets_sent == 2002
        assert report.sweeps_completed == 3
        assert report.elapsed_seconds == pytest.approx(1004.818643, abs=1e-6)
        assert report.efficiency.malformed == 1343
        assert report.efficiency.rejections == 399
        assert len(report.covered_states) == 13
        assert not report.findings

    def test_explicit_sequential_equals_default(self):
        default = run_campaign(D2, FuzzConfig(max_packets=1_000), armed=False)
        explicit = run_campaign(
            D2,
            FuzzConfig(max_packets=1_000),
            armed=False,
            strategy="sequential",
        )
        assert default == explicit


class TestLoggingFlags:
    def test_quiet_suppresses_normal_output(self, capsys):
        assert main(["--quiet", "devices"]) == 0
        assert capsys.readouterr().out == ""

    def test_verbose_routes_library_debug_to_stderr(self, capsys):
        assert main(["--verbose", "devices"]) == 0
        captured = capsys.readouterr()
        assert "D1" in captured.out  # normal output still on stdout

    def test_repeated_main_calls_do_not_duplicate_output(self, capsys):
        main(["devices"])
        first = capsys.readouterr().out
        main(["devices"])
        second = capsys.readouterr().out
        assert first == second
        assert first.count("D1 ") == 1


class TestFleetTelemetry:
    def test_fleet_records_a_run(self, tmp_path, capsys):
        root = tmp_path / "runs"
        assert main([
            "fleet", "--profiles", "1", "--budget", "500",
            "--workers", "2", "--telemetry", str(root),
        ]) == 0
        out = capsys.readouterr().out
        assert "telemetry run " in out
        (run_dir,) = root.iterdir()
        assert (run_dir / "events.jsonl").exists()
        assert (run_dir / "metrics.prom").exists()

    def test_profile_requires_telemetry(self):
        with pytest.raises(SystemExit, match="--profile requires"):
            main(["fleet", "--profiles", "1", "--profile"])


class TestRunsCommands:
    @pytest.fixture()
    def recorded_root(self, tmp_path, capsys):
        root = tmp_path / "runs"
        main([
            "fleet", "--profiles", "1", "--budget", "500",
            "--workers", "2", "--telemetry", str(root),
        ])
        capsys.readouterr()
        return root

    def test_runs_list(self, recorded_root, capsys):
        assert main(["runs", "list", "--root", str(recorded_root)]) == 0
        out = capsys.readouterr().out
        assert "finished" in out
        assert "run id" in out

    def test_runs_list_empty_root(self, tmp_path, capsys):
        assert main(["runs", "list", "--root", str(tmp_path / "none")]) == 0
        assert "no telemetry runs" in capsys.readouterr().out

    def test_runs_show(self, recorded_root, capsys):
        (run_dir,) = recorded_root.iterdir()
        assert main([
            "runs", "show", run_dir.name, "--root", str(recorded_root),
        ]) == 0
        out = capsys.readouterr().out
        assert '"status": "finished"' in out
        assert "| worker |" in out
        assert "metrics.prom" in out

    def test_runs_tail_once(self, recorded_root, capsys):
        (run_dir,) = recorded_root.iterdir()
        assert main([
            "runs", "tail", str(run_dir), "--once",
            "--root", str(recorded_root),
        ]) == 0
        out = capsys.readouterr().out
        assert "[finished]" in out
        assert "campaigns 1/1" in out

    def test_runs_show_unknown_run_exits(self, tmp_path):
        with pytest.raises(SystemExit, match="no recorded run"):
            main(["runs", "show", "nope", "--root", str(tmp_path)])
