"""Tests for the RFCOMM mux and the transferred fuzzing methodology.

The transferred fuzzer is no longer a standalone class: RFCOMM
campaigns run through the shared engine via the ``rfcomm`` fuzz target
(see ``tests/targets/`` for the cross-protocol suite). The tests here
pin the mux itself plus the RFCOMM-specific campaign behaviour the old
``RfcommFuzzer`` tests covered.
"""

from __future__ import annotations

from repro.core.config import FuzzConfig
from repro.core.detection import VulnerabilityClass, finding_key
from repro.rfcomm.constants import CONTROL_DLCI, FrameType
from repro.rfcomm.frames import RfcommFrame, disc, sabm, uih
from repro.rfcomm.mux import DlciState, RfcommMux
from repro.testbed.profiles import D5
from repro.testbed.session import FuzzSession


class TestMux:
    def test_control_channel_connects(self):
        mux = RfcommMux()
        response = RfcommFrame.decode(mux.handle_payload(sabm(CONTROL_DLCI).encode()))
        assert response.frame_type == FrameType.UA
        assert mux.dlci_state(CONTROL_DLCI) is DlciState.CONNECTED

    def test_data_dlci_requires_control_first(self):
        mux = RfcommMux(server_channels=(1,))
        response = RfcommFrame.decode(mux.handle_payload(sabm(3).encode()))
        assert response.frame_type == FrameType.DM

    def test_data_dlci_connects_after_control(self):
        mux = RfcommMux(server_channels=(1,))
        mux.handle_payload(sabm(CONTROL_DLCI).encode())
        response = RfcommFrame.decode(mux.handle_payload(sabm(3).encode()))
        assert response.frame_type == FrameType.UA

    def test_unknown_dlci_rejected_with_dm(self):
        mux = RfcommMux(server_channels=(1,))
        mux.handle_payload(sabm(CONTROL_DLCI).encode())
        response = RfcommFrame.decode(mux.handle_payload(sabm(40).encode()))
        assert response.frame_type == FrameType.DM

    def test_uih_echoes_on_connected_dlci(self):
        mux = RfcommMux(server_channels=(1,))
        mux.handle_payload(sabm(CONTROL_DLCI).encode())
        mux.handle_payload(sabm(3).encode())
        response = RfcommFrame.decode(mux.handle_payload(uih(3, b"hi").encode()))
        assert response.frame_type == FrameType.UIH
        assert response.payload == b"hi"

    def test_uih_to_disconnected_dlci_gets_dm(self):
        mux = RfcommMux(server_channels=(1,))
        response = RfcommFrame.decode(mux.handle_payload(uih(3, b"hi").encode()))
        assert response.frame_type == FrameType.DM

    def test_disc_closes(self):
        mux = RfcommMux(server_channels=(1,))
        mux.handle_payload(sabm(CONTROL_DLCI).encode())
        mux.handle_payload(sabm(3).encode())
        response = RfcommFrame.decode(mux.handle_payload(disc(3).encode()))
        assert response.frame_type == FrameType.UA
        assert mux.dlci_state(3) is DlciState.DISCONNECTED

    def test_bad_fcs_frame_dropped(self):
        mux = RfcommMux()
        raw = bytearray(sabm(CONTROL_DLCI).encode())
        raw[-1] ^= 0xFF
        assert mux.handle_payload(bytes(raw)) == b""
        assert mux.frames_rejected == 1


def _rfcomm_session(armed: bool, budget: int = 3000, seed: int = 7) -> FuzzSession:
    return FuzzSession(
        D5,
        FuzzConfig(max_packets=budget, seed=seed),
        armed=armed,
        target="rfcomm",
    )


class TestRfcommCampaign:
    """The §V thesis, now through the shared campaign engine."""

    def test_state_guiding_opens_dlcis(self):
        session = _rfcomm_session(armed=False)
        report = session.run()
        mux = session.device.rfcomm_mux
        assert {state.value for state in report.covered_states} == {
            "MUX_CLOSED",
            "CONTROL_OPEN",
            "DATA_OPEN",
        }
        assert (CONTROL_DLCI, DlciState.CONNECTED) in mux.visited_states()
        assert (3, DlciState.CONNECTED) in mux.visited_states()

    def test_mutated_frames_parse_and_classify(self):
        session = _rfcomm_session(armed=False)
        report = session.run()
        mux = session.device.rfcomm_mux
        assert report.packets_sent >= 3000
        assert mux.frames_rejected > 0  # DMs for unopened DLCIs
        assert mux.frames_accepted > 0
        assert not report.findings

    def test_vulnerable_mux_crashes_under_fuzzing(self):
        session = _rfcomm_session(armed=True)
        report = session.run()
        assert report.vulnerability_found
        finding = report.first_finding
        assert finding.vulnerability_class is VulnerabilityClass.CRASH
        assert finding.target == "rfcomm"
        assert not session.device.is_alive
        assert session.device.crash.vulnerability_id == "rfcomm-uih-overflow"
        assert session.device.crash_dumps  # tombstone recovered

    def test_finding_buckets_with_shared_key(self):
        """RFCOMM findings dedupe via finding_key(), not a raw tuple.

        The old standalone fuzzer's report bucketed crashes by an
        ad-hoc tuple that never matched the fleet/corpus databases; an
        absorbed finding must produce the canonical key with the target
        name in front, distinct from the same trigger on L2CAP.
        """
        report = _rfcomm_session(armed=True).run()
        finding = report.first_finding
        key = finding.key("Apple")
        assert key == finding_key(
            "Apple", VulnerabilityClass.CRASH, finding.trigger, "rfcomm"
        )
        assert key[0] == "rfcomm"
        assert key != finding_key(
            "Apple", VulnerabilityClass.CRASH, finding.trigger, "l2cap"
        )

    def test_campaign_is_deterministic(self):
        first = _rfcomm_session(armed=False, budget=1000).run()
        second = _rfcomm_session(armed=False, budget=1000).run()
        assert first == second

    def test_disarmed_mux_never_fires_the_bug(self):
        """Disarming the device disarms the injected mux overflow too."""
        session = _rfcomm_session(armed=False)
        report = session.run()
        assert not report.findings
        assert session.device.is_alive
