"""Tests for the RFCOMM mux and the transferred fuzzing methodology."""

from __future__ import annotations

import pytest

from repro.core.packet_queue import PacketQueue
from repro.hci.transport import VirtualLink
from repro.l2cap.constants import CommandCode, ConnectionResult, Psm
from repro.l2cap.packets import connection_request
from repro.rfcomm.constants import CONTROL_DLCI, FrameType
from repro.rfcomm.frames import RfcommFrame, disc, sabm, uih
from repro.rfcomm.fuzzer import RfcommFuzzer
from repro.rfcomm.mux import DlciState, RfcommMux
from repro.stack.device import DeviceMeta, VirtualDevice
from repro.stack.services import ServiceDirectory, ServiceRecord
from repro.stack.vendors import BLUEDROID


class TestMux:
    def test_control_channel_connects(self):
        mux = RfcommMux()
        response = RfcommFrame.decode(mux.handle_payload(sabm(CONTROL_DLCI).encode()))
        assert response.frame_type == FrameType.UA
        assert mux.dlci_state(CONTROL_DLCI) is DlciState.CONNECTED

    def test_data_dlci_requires_control_first(self):
        mux = RfcommMux(server_channels=(1,))
        response = RfcommFrame.decode(mux.handle_payload(sabm(3).encode()))
        assert response.frame_type == FrameType.DM

    def test_data_dlci_connects_after_control(self):
        mux = RfcommMux(server_channels=(1,))
        mux.handle_payload(sabm(CONTROL_DLCI).encode())
        response = RfcommFrame.decode(mux.handle_payload(sabm(3).encode()))
        assert response.frame_type == FrameType.UA

    def test_unknown_dlci_rejected_with_dm(self):
        mux = RfcommMux(server_channels=(1,))
        mux.handle_payload(sabm(CONTROL_DLCI).encode())
        response = RfcommFrame.decode(mux.handle_payload(sabm(40).encode()))
        assert response.frame_type == FrameType.DM

    def test_uih_echoes_on_connected_dlci(self):
        mux = RfcommMux(server_channels=(1,))
        mux.handle_payload(sabm(CONTROL_DLCI).encode())
        mux.handle_payload(sabm(3).encode())
        response = RfcommFrame.decode(mux.handle_payload(uih(3, b"hi").encode()))
        assert response.frame_type == FrameType.UIH
        assert response.payload == b"hi"

    def test_uih_to_disconnected_dlci_gets_dm(self):
        mux = RfcommMux(server_channels=(1,))
        response = RfcommFrame.decode(mux.handle_payload(uih(3, b"hi").encode()))
        assert response.frame_type == FrameType.DM

    def test_disc_closes(self):
        mux = RfcommMux(server_channels=(1,))
        mux.handle_payload(sabm(CONTROL_DLCI).encode())
        mux.handle_payload(sabm(3).encode())
        response = RfcommFrame.decode(mux.handle_payload(disc(3).encode()))
        assert response.frame_type == FrameType.UA
        assert mux.dlci_state(3) is DlciState.DISCONNECTED

    def test_bad_fcs_frame_dropped(self):
        mux = RfcommMux()
        raw = bytearray(sabm(CONTROL_DLCI).encode())
        raw[-1] ^= 0xFF
        assert mux.handle_payload(bytes(raw)) == b""
        assert mux.frames_rejected == 1


def _rfcomm_device(vulnerable=False):
    """A device exposing RFCOMM without pairing (earbud in pairing mode)."""
    mux = RfcommMux(server_channels=(1,), vulnerable=vulnerable)
    services = ServiceDirectory(
        [
            ServiceRecord(Psm.SDP, "SDP"),
            ServiceRecord(Psm.RFCOMM, "Serial Port"),
        ]
    )
    device = VirtualDevice(
        meta=DeviceMeta("AA:BB:CC:00:00:10", "rfcomm-target", "earphone"),
        personality=BLUEDROID,
        services=services,
    )
    device.engine.data_handlers[Psm.RFCOMM] = mux.handle_payload
    link = VirtualLink(clock=device.clock)
    device.attach_to(link)
    queue = PacketQueue(link)
    return device, mux, queue


def _open_rfcomm_channel(queue):
    responses = queue.exchange(connection_request(psm=Psm.RFCOMM, scid=0x0090))
    rsp = next(r for r in responses if r.code == CommandCode.CONNECTION_RSP)
    assert rsp.fields["result"] == ConnectionResult.SUCCESS
    return 0x0090, rsp.fields["dcid"]


class TestRfcommFuzzer:
    def test_state_guiding_opens_channels(self):
        device, mux, queue = _rfcomm_device()
        our_cid, target_cid = _open_rfcomm_channel(queue)
        fuzzer = RfcommFuzzer(queue, our_cid, target_cid)
        assert fuzzer.open_control_channel()
        assert fuzzer.open_data_dlci(3)
        assert mux.dlci_state(3) is DlciState.CONNECTED

    def test_mutated_frames_parse_and_classify(self):
        device, mux, queue = _rfcomm_device()
        our_cid, target_cid = _open_rfcomm_channel(queue)
        fuzzer = RfcommFuzzer(queue, our_cid, target_cid)
        report = fuzzer.run(per_type=5)
        assert report.frames_sent >= 20
        assert report.rejected > 0  # DMs for unopened DLCIs
        assert not report.crashed

    def test_vulnerable_mux_crashes_under_fuzzing(self):
        """The §V thesis: the same technique finds RFCOMM bugs."""
        device, mux, queue = _rfcomm_device(vulnerable=True)
        our_cid, target_cid = _open_rfcomm_channel(queue)
        fuzzer = RfcommFuzzer(queue, our_cid, target_cid, seed=7)
        report = fuzzer.run(per_type=8)
        assert report.crashed
        assert not device.is_alive
        assert device.crash.vulnerability_id == "rfcomm-uih-overflow"
        assert device.crash_dumps  # tombstone recovered

    def test_valid_frames_never_trigger_the_bug(self):
        device, mux, queue = _rfcomm_device(vulnerable=True)
        our_cid, target_cid = _open_rfcomm_channel(queue)
        fuzzer = RfcommFuzzer(queue, our_cid, target_cid)
        assert fuzzer.open_control_channel()
        assert fuzzer.open_data_dlci(3)
        # Clean UIH data (no garbage) is harmless.
        from repro.l2cap.packets import L2capPacket

        packet = L2capPacket(
            code=0, identifier=0, header_cid=target_cid,
            tail=uih(3, b"clean").encode(), fill_defaults=False,
        )
        queue.exchange(packet)
        assert device.is_alive

    def test_fuzzer_is_deterministic(self):
        results = []
        for _ in range(2):
            device, mux, queue = _rfcomm_device()
            our_cid, target_cid = _open_rfcomm_channel(queue)
            report = RfcommFuzzer(queue, our_cid, target_cid, seed=42).run()
            results.append((report.frames_sent, report.accepted, report.rejected))
        assert results[0] == results[1]
