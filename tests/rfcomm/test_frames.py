"""Tests for the RFCOMM frame codec and FCS."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import PacketDecodeError, PacketEncodeError
from repro.rfcomm.constants import FrameType, fcs, fcs_ok
from repro.rfcomm.frames import RfcommFrame, disc, dm, sabm, ua, uih


class TestFcs:
    def test_fcs_detects_corruption(self):
        data = b"\x0b\x2f"
        check = fcs(data)
        assert fcs_ok(data, check)
        assert not fcs_ok(b"\x0b\x2e", check)

    def test_fcs_is_one_byte(self):
        assert 0 <= fcs(b"\x03\xef\x01") <= 0xFF


class TestCodec:
    @pytest.mark.parametrize(
        "builder,frame_type",
        [
            (sabm, FrameType.SABM),
            (ua, FrameType.UA),
            (dm, FrameType.DM),
            (disc, FrameType.DISC),
        ],
    )
    def test_control_frames_round_trip(self, builder, frame_type):
        frame = builder(5)
        decoded = RfcommFrame.decode(frame.encode())
        assert decoded.frame_type == frame_type
        assert decoded.dlci == 5

    def test_uih_round_trip_with_payload(self):
        frame = uih(3, b"serial data")
        decoded = RfcommFrame.decode(frame.encode())
        assert decoded.payload == b"serial data"
        assert decoded.dlci == 3

    def test_long_payload_uses_two_byte_length(self):
        frame = uih(3, b"x" * 200)
        decoded = RfcommFrame.decode(frame.encode())
        assert decoded.payload == b"x" * 200

    def test_cr_bit_round_trips(self):
        decoded = RfcommFrame.decode(ua(1).encode())
        assert not decoded.command

    def test_bad_fcs_rejected(self):
        raw = bytearray(sabm(1).encode())
        raw[-1] ^= 0xFF
        with pytest.raises(PacketDecodeError):
            RfcommFrame.decode(bytes(raw))

    def test_fcs_override_produces_invalid_frame(self):
        frame = RfcommFrame(1, FrameType.SABM, fcs_override=0x00)
        with pytest.raises(PacketDecodeError):
            RfcommFrame.decode(frame.encode())

    def test_truncated_frame_rejected(self):
        with pytest.raises(PacketDecodeError):
            RfcommFrame.decode(b"\x0b\x2f")

    def test_dlci_out_of_range_rejected(self):
        with pytest.raises(PacketEncodeError):
            RfcommFrame(64, FrameType.SABM).encode()

    def test_uih_fcs_covers_header_only(self):
        """Corrupting UIH payload does not break the FCS (per TS 07.10)."""
        raw = bytearray(uih(3, b"abcd").encode())
        raw[3] ^= 0xFF  # flip a payload byte
        decoded = RfcommFrame.decode(bytes(raw))
        assert decoded.payload != b"abcd"

    def test_trailing_garbage_is_tolerated(self):
        """Bytes beyond the declared frame parse fine — the garbage tail."""
        raw = uih(3, b"ab").encode() + b"\xde\xad\xbe\xef"
        decoded = RfcommFrame.decode(raw)
        assert decoded.payload == b"ab"


class TestProperties:
    @given(
        st.integers(min_value=0, max_value=63),
        st.sampled_from(list(FrameType)),
        st.binary(max_size=64),
    )
    @settings(max_examples=200)
    def test_round_trip(self, dlci, frame_type, payload):
        if frame_type != FrameType.UIH:
            payload = b""
        frame = RfcommFrame(dlci, frame_type, payload=payload)
        decoded = RfcommFrame.decode(frame.encode())
        assert decoded.dlci == dlci
        assert decoded.frame_type == frame_type
        assert decoded.payload == payload

    @given(st.binary(min_size=1, max_size=32))
    @settings(max_examples=200)
    def test_decode_never_crashes(self, raw):
        try:
            RfcommFrame.decode(raw)
        except PacketDecodeError:
            pass
