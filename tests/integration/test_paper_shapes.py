"""Integration tests pinning the paper's headline result *shapes*.

These use reduced budgets so the suite stays fast; the benchmarks
regenerate the full-scale numbers. What is asserted here is exactly what
the paper claims survives re-measurement: who wins, by what rough factor,
and where each vulnerability shows up.
"""

from __future__ import annotations

import pytest

from repro.analysis.comparison import (
    figure10_bars,
    figure11_maps,
    run_comparison,
    table7_rows,
)
from repro.core.config import FuzzConfig
from repro.core.detection import VulnerabilityClass
from repro.l2cap.states import ChannelState
from repro.testbed.profiles import D1, D2, D3, D4, D5, D6, D7
from repro.testbed.session import run_campaign


@pytest.fixture(scope="module")
def comparison():
    """One shared 15k-packet comparison run (module-scoped: it's costly)."""
    return run_comparison(max_packets=15_000)


class TestTable7Shape:
    def test_l2fuzz_mp_ratio_band(self, comparison):
        assert 0.60 < comparison["L2Fuzz"].efficiency.mp_ratio < 0.80

    def test_l2fuzz_pr_ratio_band(self, comparison):
        assert 0.25 < comparison["L2Fuzz"].efficiency.pr_ratio < 0.40

    def test_l2fuzz_efficiency_band(self, comparison):
        assert 0.40 < comparison["L2Fuzz"].efficiency.mutation_efficiency < 0.55

    def test_efficiency_ordering(self, comparison):
        eff = {
            name: result.efficiency.mutation_efficiency
            for name, result in comparison.items()
        }
        assert eff["L2Fuzz"] > eff["Defensics"] > eff["BFuzz"] > eff["BSS"]
        assert eff["BSS"] == 0.0

    def test_l2fuzz_at_least_10x_defensics(self, comparison):
        """Paper: 47.22% vs 2.33% — a ~20x gap; assert at least 10x."""
        l2fuzz = comparison["L2Fuzz"].efficiency.mutation_efficiency
        defensics = comparison["Defensics"].efficiency.mutation_efficiency
        assert l2fuzz > 10 * defensics

    def test_l2fuzz_generates_most_malformed_packets(self, comparison):
        """Paper Fig. 8: up to 46x more malformed packets."""
        malformed = {
            name: result.efficiency.malformed for name, result in comparison.items()
        }
        assert malformed["L2Fuzz"] > 20 * malformed["Defensics"]
        assert malformed["L2Fuzz"] > 20 * malformed["BFuzz"]
        assert malformed["BSS"] == 0

    def test_bfuzz_has_highest_rejection_ratio(self, comparison):
        pr = {name: r.efficiency.pr_ratio for name, r in comparison.items()}
        assert pr["BFuzz"] > 0.8
        assert pr["BFuzz"] > pr["L2Fuzz"] > pr["Defensics"]

    def test_throughput_ordering_matches_paper(self, comparison):
        pps = {name: r.efficiency.packets_per_second for name, r in comparison.items()}
        assert pps["L2Fuzz"] > pps["BFuzz"] > pps["Defensics"] > pps["BSS"]

    def test_table_rows_render(self, comparison):
        rows = table7_rows(comparison)
        assert [row["fuzzer"] for row in rows] == [
            "L2Fuzz",
            "Defensics",
            "BFuzz",
            "BSS",
        ]


class TestFigure10And11Shape:
    def test_coverage_counts_match_paper(self, comparison):
        assert figure10_bars(comparison) == {
            "L2Fuzz": 13,
            "Defensics": 7,
            "BFuzz": 6,
            "BSS": 3,
        }

    def test_l2fuzz_uniquely_covers_create_and_move(self, comparison):
        """Paper §IV.D: creation/move jobs covered only by L2Fuzz."""
        maps = figure11_maps(comparison)
        for state in ("WAIT_CREATE", "WAIT_MOVE", "WAIT_MOVE_CONFIRM"):
            assert state in maps["L2Fuzz"]
            assert state not in maps["Defensics"]
            assert state not in maps["BFuzz"]
            assert state not in maps["BSS"]

    def test_fig8_curve_l2fuzz_dominates(self, comparison):
        l2fuzz_final = comparison["L2Fuzz"].mp_points[-1]
        for other in ("Defensics", "BFuzz", "BSS"):
            assert l2fuzz_final.y > comparison[other].mp_points[-1].y


class TestTable6Shape:
    def test_d2_dos_in_config_job(self):
        report = run_campaign(D2, FuzzConfig(max_packets=50_000))
        finding = report.first_finding
        assert finding.vulnerability_class is VulnerabilityClass.DOS
        assert finding.state == ChannelState.WAIT_CONFIG.value
        assert "l2c_csm_execute" in finding.crash_dump

    def test_d3_dos_in_wait_create(self):
        """Paper §IV.E: D3's DoS found via Create Channel in Wait-Create."""
        report = run_campaign(D3, FuzzConfig(max_packets=100_000))
        finding = report.first_finding
        assert finding is not None
        assert finding.vulnerability_class is VulnerabilityClass.DOS
        assert finding.state == ChannelState.WAIT_CREATE.value

    def test_d5_crash_fast(self):
        report = run_campaign(D5, FuzzConfig(max_packets=50_000))
        finding = report.first_finding
        assert finding.vulnerability_class is VulnerabilityClass.CRASH
        assert finding.crash_dump is None  # RTKit dies silently

    def test_hardened_devices_survive(self):
        for profile in (D4, D6, D7):
            report = run_campaign(profile, FuzzConfig(max_packets=3000))
            assert not report.vulnerability_found, profile.device_id

    def test_detection_time_ordering_d5_before_d1(self):
        """Paper Table VI: D5 (40s) found faster than D1 (1m32s)."""
        d5 = run_campaign(D5, FuzzConfig(max_packets=50_000))
        d1 = run_campaign(D1, FuzzConfig(max_packets=50_000))
        assert d5.first_finding.sim_time < d1.first_finding.sim_time
