"""Integration tests for the fleet orchestrator."""

from __future__ import annotations

import json

import pytest

from repro.analysis.metrics import MutationEfficiency
from repro.core.config import FuzzConfig
from repro.core.detection import Finding, VulnerabilityClass
from repro.core.fleet import (
    CampaignRun,
    CampaignSpec,
    FleetOrchestrator,
    derive_campaign_seed,
    merge_reports,
    simulated_makespan,
)
from repro.core.report import CampaignReport
from repro.l2cap.states import ChannelState
from repro.testbed.profiles import ALL_PROFILES, D1, D2, D3

FLEET_PROFILES = ALL_PROFILES[:4]
FLEET_STRATEGIES = ("breadth_first", "targeted")


def _run_fleet(workers: int = 1, fleet_seed: int = 7):
    return FleetOrchestrator(
        profiles=FLEET_PROFILES,
        strategies=FLEET_STRATEGIES,
        fleet_seed=fleet_seed,
        workers=workers,
        base_config=FuzzConfig(max_packets=1500),
    ).run()


class TestFleetDeterminism:
    def test_merged_report_byte_identical_across_runs(self):
        first = _run_fleet()
        second = _run_fleet()
        assert first.to_json() == second.to_json()
        assert first.to_markdown() == second.to_markdown()

    def test_worker_count_does_not_change_results(self):
        single = _run_fleet(workers=1).to_dict()
        double = _run_fleet(workers=2).to_dict()
        for schedule_key in (
            "workers",
            "simulated_makespan_seconds",
            "campaigns_per_simulated_second",
        ):
            single.pop(schedule_key)
            double.pop(schedule_key)
        assert single == double

    def test_different_fleet_seed_changes_campaign_seeds(self):
        first = _run_fleet(fleet_seed=7)
        second = _run_fleet(fleet_seed=8)
        assert [run.spec.seed for run in first.campaigns] != [
            run.spec.seed for run in second.campaigns
        ]


class TestFleetShape:
    def test_matrix_is_profiles_times_strategies(self):
        report = _run_fleet()
        assert len(report.campaigns) == len(FLEET_PROFILES) * len(FLEET_STRATEGIES)
        observed = [
            (run.spec.device_id, run.spec.strategy) for run in report.campaigns
        ]
        expected = [
            (profile.device_id, strategy)
            for profile in FLEET_PROFILES
            for strategy in FLEET_STRATEGIES
        ]
        assert observed == expected

    def test_campaign_seeds_all_distinct_and_derived(self):
        report = _run_fleet()
        seeds = [run.spec.seed for run in report.campaigns]
        assert len(set(seeds)) == len(seeds)
        for run in report.campaigns:
            assert run.spec.seed == derive_campaign_seed(7, run.spec.index)

    def test_merged_coverage_superset_of_singles(self):
        report = _run_fleet()
        merged = set(report.merged_states)
        for run in report.campaigns:
            assert {state.value for state in run.report.covered_states} <= merged
        assert report.merged_state_count >= report.best_single_coverage

    def test_json_round_trips(self):
        report = _run_fleet()
        decoded = json.loads(report.to_json())
        assert decoded["campaign_count"] == len(report.campaigns)
        assert decoded["fleet_seed"] == 7

    def test_validation(self):
        with pytest.raises(ValueError):
            FleetOrchestrator([], ["sequential"])
        with pytest.raises(ValueError):
            FleetOrchestrator([D2], [])
        with pytest.raises(ValueError):
            FleetOrchestrator([D2], ["sequential"], workers=0)


def _synthetic_run(index, device_id, strategy, trigger, vuln=VulnerabilityClass.DOS):
    finding = Finding(
        vulnerability_class=vuln,
        error_message="Connection Failed",
        state="WAIT_CONFIG",
        trigger=trigger,
        sim_time=10.0 + index,
        ping_failed=True,
    )
    report = CampaignReport(
        target_name=device_id,
        findings=(finding,),
        elapsed_seconds=100.0 + index,
        packets_sent=500,
        sweeps_completed=1,
        efficiency=MutationEfficiency(500, 300, 400, 100, 100.0 + index),
        covered_states=frozenset({ChannelState.CLOSED, ChannelState.WAIT_CONFIG}),
        strategy=strategy,
    )
    spec = CampaignSpec(
        index=index,
        device_id=device_id,
        strategy=strategy,
        seed=derive_campaign_seed(7, index),
    )
    return CampaignRun(spec=spec, report=report)


class TestFindingDedup:
    profiles = {"D1": D1, "D2": D2, "D3": D3}

    def test_same_vendor_class_trigger_collapses(self):
        # D1 and D2 are both Google; identical trigger → one finding.
        runs = [
            _synthetic_run(0, "D1", "breadth_first", "CONFIG_REQ(x)"),
            _synthetic_run(1, "D2", "targeted", "CONFIG_REQ(x)"),
        ]
        report = merge_reports(runs, self.profiles, fleet_seed=7, workers=1)
        assert len(report.findings) == 1
        finding = report.findings[0]
        assert finding.occurrences == 2
        assert finding.device_id == "D1"  # first detection wins
        assert finding.strategy == "breadth_first"

    def test_different_trigger_stays_separate(self):
        runs = [
            _synthetic_run(0, "D1", "breadth_first", "CONFIG_REQ(x)"),
            _synthetic_run(1, "D2", "targeted", "CONFIG_REQ(y)"),
        ]
        report = merge_reports(runs, self.profiles, fleet_seed=7, workers=1)
        assert len(report.findings) == 2

    def test_different_vendor_stays_separate(self):
        # D3 is Samsung: same trigger, different vendor → no dedup.
        runs = [
            _synthetic_run(0, "D1", "breadth_first", "CONFIG_REQ(x)"),
            _synthetic_run(1, "D3", "targeted", "CONFIG_REQ(x)"),
        ]
        report = merge_reports(runs, self.profiles, fleet_seed=7, workers=1)
        assert len(report.findings) == 2
        assert {finding.vendor for finding in report.findings} == {
            "Google",
            "Samsung",
        }

    def test_coverage_map_counts_campaigns(self):
        runs = [
            _synthetic_run(0, "D1", "breadth_first", "a"),
            _synthetic_run(1, "D2", "targeted", "b"),
        ]
        report = merge_reports(runs, self.profiles, fleet_seed=7, workers=1)
        assert report.coverage_map == (
            ("l2cap", "CLOSED", 2),
            ("l2cap", "WAIT_CONFIG", 2),
        )
        assert report.coverage_by_target() == {
            "l2cap": (("CLOSED", 2), ("WAIT_CONFIG", 2))
        }


class TestSimulatedSchedule:
    def test_single_worker_is_total_duration(self):
        assert simulated_makespan([3.0, 2.0, 5.0], 1) == 10.0

    def test_greedy_least_loaded(self):
        # Loads: w0=4, w1=3, then 2 joins w1 (3<4) → makespan 5.
        assert simulated_makespan([4.0, 3.0, 2.0], 2) == 5.0

    def test_more_workers_never_slower(self):
        durations = [5.0, 1.0, 4.0, 2.0, 3.0]
        spans = [simulated_makespan(durations, n) for n in (1, 2, 4, 8)]
        assert spans == sorted(spans, reverse=True)

    def test_validation(self):
        with pytest.raises(ValueError):
            simulated_makespan([1.0], 0)
