"""Integration tests for fleets on the persistent batched runtime.

The contract under test: execution topology — worker count, shard
granularity, pool reuse, process vs. thread fallback — must never
change what a fleet computes. Only the schedule-derived summary fields
may vary with the worker count.
"""

from __future__ import annotations

import warnings

import pytest

from repro.core.config import FuzzConfig
from repro.core.fleet import FleetOrchestrator, SummaryRun
from repro.testbed.profiles import ALL_PROFILES

SCHEDULE_KEYS = (
    "workers",
    "simulated_makespan_seconds",
    "campaigns_per_simulated_second",
)


def _orchestrator(workers: int = 1, batch: int | None = None, **kwargs):
    return FleetOrchestrator(
        profiles=ALL_PROFILES[:3],
        strategies=("sequential", "targeted"),
        fleet_seed=7,
        workers=workers,
        base_config=FuzzConfig(max_packets=700),
        batch=batch,
        **kwargs,
    )


def _comparable(report) -> dict:
    rendered = report.to_dict()
    for key in SCHEDULE_KEYS:
        rendered.pop(key)
    return rendered


class TestWorkerIndependence:
    def test_merged_report_identical_across_worker_counts(self):
        rendered = {}
        for workers in (1, 2, 4):
            with _orchestrator(workers=workers) as orchestrator:
                rendered[workers] = _comparable(orchestrator.run())
        assert rendered[1] == rendered[2] == rendered[4]

    def test_merged_report_identical_across_batch_sizes(self):
        rendered = []
        for batch in (1, 2, 6, None):
            with _orchestrator(workers=2, batch=batch) as orchestrator:
                rendered.append(orchestrator.run().to_dict())
        assert all(entry == rendered[0] for entry in rendered[1:])

    def test_findings_dedupe_identically_across_workers(self):
        # The armed fleet crashes several campaigns; dedup and
        # first-detection attribution must not depend on the pool.
        reports = {}
        for workers in (1, 4):
            with _orchestrator(workers=workers) as orchestrator:
                reports[workers] = orchestrator.run()
        assert [
            (f.target, f.vendor, f.vulnerability_class, f.trigger, f.occurrences)
            for f in reports[1].findings
        ] == [
            (f.target, f.vendor, f.vulnerability_class, f.trigger, f.occurrences)
            for f in reports[4].findings
        ]


class TestPersistentRuntime:
    def test_repeated_runs_reuse_runtime_and_agree(self):
        with _orchestrator(workers=2) as orchestrator:
            first = orchestrator.run()
            runtime = orchestrator._runtime
            second = orchestrator.run()
            assert orchestrator._runtime is runtime  # same pool, not rebuilt
        assert first.to_json() == second.to_json()

    def test_runs_come_back_as_lazy_summaries(self):
        with _orchestrator(workers=1) as orchestrator:
            report = orchestrator.run()
        run = report.campaigns[0]
        assert isinstance(run, SummaryRun)
        assert run._report is None  # merge did not materialise reports
        materialised = run.report
        assert run._report is materialised  # cached on first access
        assert materialised.packets_sent == run.summary.packets_sent

    def test_close_is_idempotent(self):
        orchestrator = _orchestrator(workers=2)
        orchestrator.run()
        orchestrator.close()
        orchestrator.close()

    def test_bare_run_does_not_leak_worker_pool(self):
        # Outside a with-block, run() must clean its pool up before
        # returning, like the original per-run executors did.
        orchestrator = _orchestrator(workers=2)
        orchestrator.run()
        assert orchestrator._runtime is None
        # Touching .runtime explicitly opts into persistence instead.
        persistent = _orchestrator(workers=2)
        assert persistent.runtime is not None
        persistent.run()
        assert persistent._runtime is not None
        persistent.close()


class TestThreadFallback:
    @staticmethod
    def _custom_strategy():
        class EchoStrategy:
            name = "custom-echo"

            def plan(self, base_plan, visits):
                return base_plan

            def packets_per_command(self, state, default):
                return default

        return EchoStrategy()

    def test_single_warning_at_construction(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            orchestrator = FleetOrchestrator(
                profiles=ALL_PROFILES[:1],
                strategies=(self._custom_strategy(),),
                workers=2,
                base_config=FuzzConfig(max_packets=400),
            )
            orchestrator.run()
            orchestrator.run()
        fallback = [
            entry
            for entry in caught
            if issubclass(entry.category, RuntimeWarning)
            and "thread" in str(entry.message)
        ]
        assert len(fallback) == 1

    def test_no_warning_for_registry_fleet(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            with _orchestrator(workers=2) as orchestrator:
                orchestrator.run()
        assert not [
            entry
            for entry in caught
            if issubclass(entry.category, RuntimeWarning)
        ]

    def test_single_worker_object_fleet_never_warns(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            FleetOrchestrator(
                profiles=ALL_PROFILES[:1],
                strategies=(self._custom_strategy(),),
                workers=1,
                base_config=FuzzConfig(max_packets=300),
            ).run()
        assert not [
            entry
            for entry in caught
            if issubclass(entry.category, RuntimeWarning)
        ]


class TestBatchedCorpusWriteBack:
    def test_corpus_contents_independent_of_workers_and_batch(self, tmp_path):
        from repro.corpus.findings import FindingDatabase
        from repro.corpus.store import CorpusStore

        contents = []
        for index, (workers, batch) in enumerate(((1, None), (2, 1), (2, 3))):
            root = tmp_path / f"corpus-{index}"
            orchestrator = FleetOrchestrator(
                profiles=ALL_PROFILES[:2],
                strategies=("sequential",),
                fleet_seed=7,
                workers=workers,
                batch=batch,
                base_config=FuzzConfig(max_packets=600),
                corpus_dir=str(root),
            )
            with orchestrator:
                orchestrator.run()
            contents.append(
                (
                    {entry.entry_id for entry in CorpusStore(root).entries()},
                    {
                        record.bucket_id
                        for record in FindingDatabase(root).records()
                    },
                )
            )
        assert contents[0] == contents[1] == contents[2]
        entries, buckets = contents[0]
        assert entries and buckets

    def test_summary_carries_corpus_stats(self, tmp_path):
        orchestrator = FleetOrchestrator(
            profiles=ALL_PROFILES[:1],
            strategies=("sequential",),
            workers=1,
            base_config=FuzzConfig(max_packets=600),
            corpus_dir=str(tmp_path / "corpus"),
        )
        with orchestrator:
            report = orchestrator.run()
        stats = [run.summary.corpus_entries_added for run in report.campaigns]
        assert sum(stats) > 0


class TestBatchValidation:
    def test_zero_batch_rejected(self):
        with _orchestrator(workers=2, batch=0) as orchestrator:
            with pytest.raises(ValueError, match="batch"):
                orchestrator.run()
