"""Directed replay of the paper's two narrative attack flows.

* §II.C — the BlueBorne motivating example (CVE-2017-1000251): connect to
  SDP without pairing, reach the configuration state, deliver malformed
  configuration traffic.
* §IV.E — the Pixel 3 case study: DCID 0x0040 plus a garbage tail in the
  configuration job triggers a null-pointer dereference in
  ``l2c_csm_execute`` and paralyses Bluetooth.
"""

from __future__ import annotations

import pytest

from repro.errors import ConnectionFailedError
from repro.l2cap.constants import CommandCode, ConnectionResult, Psm
from repro.l2cap.packets import (
    configuration_request,
    configuration_response,
    connection_request,
)
from repro.l2cap.states import ChannelState
from repro.stack.vulnerabilities import BLUEDROID_CIDP_NULL_DEREF
from repro.testbed.profiles import D2
from repro.hci.transport import VirtualLink
from repro.core.packet_queue import PacketQueue


def _pixel3_rig(armed=True):
    device = D2.build(armed=armed)
    link = VirtualLink(clock=device.clock)
    device.attach_to(link)
    return device, PacketQueue(link)


class TestBlueborneFlow:
    """The §II.C attack flow, step by step."""

    def test_step1_sdp_connects_without_pairing(self):
        device, queue = _pixel3_rig(armed=False)
        responses = queue.exchange(connection_request(psm=Psm.SDP, scid=0x0070))
        rsp = responses[0]
        assert rsp.fields["result"] == ConnectionResult.SUCCESS

    def test_step2_state_transition_to_configuration(self):
        device, queue = _pixel3_rig(armed=False)
        responses = queue.exchange(connection_request(psm=Psm.SDP, scid=0x0070))
        dcid = responses[0].fields["dcid"]
        block = device.engine.channels.get(dcid)
        assert block.state is ChannelState.WAIT_CONFIG

    def test_step3_malformed_config_traffic_accepted(self):
        """The malformed packets are valid-in-state: no rejection."""
        device, queue = _pixel3_rig(armed=False)
        responses = queue.exchange(connection_request(psm=Psm.SDP, scid=0x0070))
        dcid = responses[0].fields["dcid"]
        queue.exchange(configuration_request(dcid=dcid, identifier=2))
        malformed = configuration_response(scid=0x9999, identifier=3)
        malformed.garbage = b"\x41" * 8
        responses = queue.exchange(malformed)
        rejects = [r for r in responses if r.code == CommandCode.COMMAND_REJECT]
        assert not rejects  # accepted without rejection — the §II.C premise


class TestPixel3CaseStudy:
    """The §IV.E zero-day replay on the armed D2 profile.

    The paper's trigger is a Configuration Request whose DCID (0x0040)
    does not match any *live* channel control block. We reproduce the
    staleness: connect (the target allocates 0x0040), disconnect, and
    reconnect (the target allocates 0x0041) — 0x0040 is now a dangling
    CID exactly like the one the paper's mutated packet named.
    """

    def _reach_config_job(self, queue):
        from repro.l2cap.packets import disconnection_request

        first = queue.exchange(connection_request(psm=Psm.SDP, scid=0x0070))
        stale = first[0].fields["dcid"]
        queue.exchange(
            disconnection_request(dcid=stale, scid=0x0070, identifier=2)
        )
        second = queue.exchange(
            connection_request(psm=Psm.SDP, scid=0x0071, identifier=3)
        )
        assert second[0].fields["dcid"] != stale
        return stale

    def test_dcid_0x40_with_garbage_kills_bluetooth(self):
        device, queue = _pixel3_rig(armed=True)
        stale = self._reach_config_job(queue)
        attack = configuration_request(dcid=stale, identifier=5)
        attack.garbage = bytes.fromhex("D23A910E")
        with pytest.raises(ConnectionFailedError):
            queue.send(attack)
        assert not device.is_alive

    def test_tombstone_matches_figure12(self):
        device, queue = _pixel3_rig(armed=True)
        stale = self._reach_config_job(queue)
        attack = configuration_request(dcid=stale, identifier=5)
        attack.garbage = bytes.fromhex("D23A910E")
        with pytest.raises(ConnectionFailedError):
            queue.send(attack)
        dump = device.crash_dumps[0]
        assert "signal 11 (SIGSEGV)" in dump
        assert "fault addr 0x20" in dump
        assert "l2c_csm_execute(t_l2c_ccb*, unsigned short, void*)" in dump
        assert "google/blueline" in dump
        assert "null pointer dereference" in dump

    def test_same_packet_without_garbage_is_harmless(self):
        device, queue = _pixel3_rig(armed=True)
        stale = self._reach_config_job(queue)
        attack = configuration_request(dcid=stale, identifier=5)
        queue.exchange(attack)
        assert device.is_alive

    def test_same_packet_outside_config_job_is_harmless(self):
        device, queue = _pixel3_rig(armed=True)
        attack = configuration_request(dcid=0x0040, identifier=5)
        attack.garbage = bytes.fromhex("D23A910E")
        queue.exchange(attack)  # no channel mid-configuration
        assert device.is_alive

    def test_vulnerability_model_is_the_registered_one(self):
        assert BLUEDROID_CIDP_NULL_DEREF in D2.vulnerabilities
