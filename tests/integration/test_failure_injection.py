"""Failure injection: fuzzing over a lossy link.

Real radio links drop frames. These tests document how the campaign
behaves when the virtual link loses packets: a lost detection ping looks
exactly like a dead target (the classic false-positive mode of black-box
wireless fuzzing the paper's error-message heuristic inherits), while
modest loss on a disarmed target merely dents the metrics.
"""

from __future__ import annotations

import random

import pytest

from repro.core.config import FuzzConfig
from repro.core.fuzzer import L2Fuzz
from repro.hci.transport import SimClock, VirtualLink
from repro.l2cap.constants import CommandCode
from repro.l2cap.packets import echo_request
from repro.stack.device import DeviceMeta, VirtualDevice
from repro.stack.vendors import BLUEDROID

from tests.conftest import DEFAULT_META, make_services


def _lossy_rig(loss_rate: float, seed: int = 1):
    clock = SimClock()
    device = VirtualDevice(
        meta=DEFAULT_META,
        personality=BLUEDROID,
        services=make_services(),
        clock=clock,
        armed=False,
    )
    link = VirtualLink(
        clock=clock, loss_rate=loss_rate, rng=random.Random(seed)
    )
    device.attach_to(link)
    return device, link


class TestLossyLink:
    def test_lossless_campaign_reports_no_findings(self):
        device, link = _lossy_rig(loss_rate=0.0)
        fuzzer = L2Fuzz(
            link=link, inquiry=device.inquiry, browse=device.sdp_browse,
            config=FuzzConfig(max_packets=600),
        )
        report = fuzzer.run()
        assert not report.vulnerability_found

    def test_total_loss_reads_as_dead_target(self):
        """100% loss is indistinguishable from a crashed device: the very
        first ping checkpoint fails and the campaign reports a finding.
        This is the false-positive mode a black-box wireless fuzzer must
        accept (the paper confirms crashes via crash dumps for this
        reason)."""
        device, link = _lossy_rig(loss_rate=1.0)
        fuzzer = L2Fuzz(
            link=link, inquiry=device.inquiry, browse=device.sdp_browse,
            config=FuzzConfig(max_packets=5_000),
        )
        report = fuzzer.run()
        assert report.vulnerability_found
        finding = report.first_finding
        assert finding.error_message == "Timeout"
        assert finding.crash_dump is None  # no dump: the tell-tale absence
        assert device.is_alive  # the device never actually died

    def test_mild_loss_only_dents_metrics(self):
        device, link = _lossy_rig(loss_rate=0.02, seed=3)
        fuzzer = L2Fuzz(
            link=link, inquiry=device.inquiry, browse=device.sdp_browse,
            config=FuzzConfig(max_packets=1_500),
        )
        report = fuzzer.run()
        # Received count shrinks relative to lossless, but the ratios
        # stay recognisable.
        assert report.efficiency.received < report.efficiency.transmitted
        assert 0.5 < report.efficiency.mp_ratio < 0.85

    def test_dropped_frames_counted_by_link(self):
        _, link = _lossy_rig(loss_rate=1.0)
        with pytest.raises(Exception):
            # A drop means no response; the echo exchange sees nothing.
            frame_payload = echo_request(b"x").encode()
            from repro.hci.packets import AclPacket

            link.send_frame(AclPacket(handle=1, payload=frame_payload).encode())
            if link.stats.frames_dropped:
                raise TimeoutError("dropped as expected")
        assert link.stats.frames_dropped == 1


class TestCliSurvey:
    def test_survey_command_smoke(self, capsys):
        """The survey command renders a Table VI row per device (tiny
        budgets keep this a smoke test; full runs live in the bench)."""
        from repro.cli import main

        assert main(["survey", "--budget", "400", "--d8-budget", "400"]) == 0
        out = capsys.readouterr().out
        assert out.count("vuln=") == 8
        assert "D5" in out and "Crash" in out  # D5 still fires within 400
