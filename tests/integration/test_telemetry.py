"""Fleet telemetry end to end: journal accuracy, parity, crash-safety.

The two contracts pinned here:

* **Accuracy** — the merged journal and metric expositions agree
  *exactly* with the merged :class:`FleetReport` (same packets, same
  findings, campaign for campaign), across the process-pool path and
  the thread-fallback path.
* **Parity** — telemetry never perturbs execution: the same fleet with
  telemetry on and off produces byte-identical reports, and a plain
  campaign's packet stream is untouched.
"""

from __future__ import annotations

import gc
import json

import pytest

from repro.core.config import FuzzConfig
from repro.core.fleet import FleetOrchestrator
from repro.telemetry import (
    EVENTS_FILENAME,
    PROFILES_DIRNAME,
    RunRecorder,
    list_runs,
    read_events,
    read_manifest,
    render_status,
    run_status,
)
from repro.telemetry.recorder import _finalize_abandoned
from repro.testbed.profiles import ALL_PROFILES, PROFILES_BY_ID


def _fleet(tmp_path, telemetry=True, **overrides):
    kwargs = dict(
        profiles=ALL_PROFILES[:2],
        strategies=["sequential", "breadth_first"],
        workers=4,
        base_config=FuzzConfig(max_packets=2_000),
        targets=("l2cap", "sdp"),
        telemetry_dir=str(tmp_path / "runs") if telemetry else None,
    )
    kwargs.update(overrides)
    return FleetOrchestrator(**kwargs)


class TestJournalMatchesReport:
    @pytest.fixture(scope="class")
    def recorded(self, tmp_path_factory):
        tmp_path = tmp_path_factory.mktemp("telemetry")
        orchestrator = _fleet(tmp_path)
        with orchestrator:
            report = orchestrator.run()
        run_dir = orchestrator.run_dir
        return report, run_dir, read_events(run_dir / EVENTS_FILENAME)

    def test_campaign_end_counters_match_fleet_report(self, recorded):
        report, _, events = recorded
        ends = {
            event["campaign"]: event
            for event in events
            if event["event"] == "campaign_end"
        }
        assert sorted(ends) == [run.spec.index for run in report.campaigns]
        for run in report.campaigns:
            event = ends[run.spec.index]
            assert event["packets_sent"] == run.report.packets_sent
            assert event["findings"] == len(run.report.findings)
            assert event["target"] == run.spec.target
            assert event["strategy"] == run.spec.strategy
            assert event["covered_states"] == sorted(
                state.value for state in run.report.covered_states
            )
        assert sum(e["packets_sent"] for e in ends.values()) == (
            report.total_packets
        )

    def test_finding_events_match_campaign_findings(self, recorded):
        report, _, events = recorded
        findings = [e for e in events if e["event"] == "finding"]
        expected = sum(len(run.report.findings) for run in report.campaigns)
        assert len(findings) == expected
        for event in findings:
            run = report.campaigns[event["campaign"]]
            finding = run.report.findings[event["finding"]]
            assert event["vulnerability_class"] == (
                finding.vulnerability_class.value
            )
            assert event["trigger"] == finding.trigger
            assert event["vendor"] == (
                PROFILES_BY_ID[run.spec.device_id].vendor
            )

    def test_correlation_chain_run_to_campaign_to_finding(self, recorded):
        report, run_dir, events = recorded
        run_id = run_dir.name
        assert all(event["run_id"] == run_id for event in events)
        campaign_events = [e for e in events if "campaign" in e]
        assert {e["campaign"] for e in campaign_events} == {
            run.spec.index for run in report.campaigns
        }
        # Worker attribution: every worker-side event names its pid.
        worker_ids = {
            e["worker"]
            for e in events
            if e["event"] in ("shard_start", "campaign_end", "shard_end")
        }
        assert worker_ids and all(
            isinstance(worker, int) for worker in worker_ids
        )

    def test_lifecycle_events_bracket_the_run(self, recorded):
        _, _, events = recorded
        kinds = [event["event"] for event in events]
        assert kinds[0] == "run_start"
        assert "run_end" in kinds
        assert kinds[-1] == "run_close"
        assert kinds.count("shard_start") == kinds.count("shard_end")

    def test_manifest_and_expositions_written(self, recorded):
        report, run_dir, _ = recorded
        manifest = read_manifest(run_dir)
        assert manifest["status"] == "finished"
        assert manifest["campaigns"] == len(report.campaigns)
        assert manifest["packets"] == report.total_packets
        assert manifest["findings"] == len(report.findings)
        snapshot = json.loads((run_dir / "metrics.json").read_text())
        sent = sum(
            row["value"]
            for row in snapshot["counters"]["repro_packets_sent_total"]
        )
        assert sent == report.total_packets
        prom = (run_dir / "metrics.prom").read_text()
        assert "# TYPE repro_packets_sent_total counter" in prom
        assert "repro_fleet_runs_total 1" in prom

    def test_run_status_view_agrees(self, recorded):
        report, run_dir, _ = recorded
        status = run_status(run_dir)
        assert status["status"] == "finished"
        assert status["finished_campaigns"] == len(report.campaigns)
        assert status["packets"] == report.total_packets
        assert status["in_flight"] == {}
        rendered = render_status(status)
        assert f"campaigns {len(report.campaigns)}/{len(report.campaigns)}" in (
            rendered
        )
        assert "| worker |" in rendered

    def test_runs_list_sees_the_run(self, recorded):
        _, run_dir, _ = recorded
        (info,) = list_runs(run_dir.parent)
        assert info.run_id == run_dir.name
        assert info.status == "finished"


class TestTelemetryParity:
    def test_fleet_report_byte_identical_with_telemetry_on(self, tmp_path):
        with _fleet(tmp_path, telemetry=False) as bare:
            baseline = bare.run().to_json()
        with _fleet(tmp_path, telemetry=True) as observed:
            recorded = observed.run().to_json()
        assert recorded == baseline

    def test_golden_d2_campaign_unchanged_by_telemetry_import(self):
        # The golden 226-packet D2 campaign must not notice the
        # telemetry layer existing (imported, but not enabled).
        from repro.testbed.profiles import D2
        from repro.testbed.session import FuzzSession

        report = FuzzSession(D2, FuzzConfig(max_packets=50_000)).run()
        assert report.packets_sent == 226
        assert report.vulnerability_found


class TestThreadFallbackPath:
    def test_synthesized_campaign_events(self, tmp_path):
        # A custom (non-registry) profile forces the thread pool; the
        # orchestrator synthesizes campaign events from the reports.
        import dataclasses as dc

        custom = dc.replace(ALL_PROFILES[0], device_id="DX", name="Custom")
        with pytest.warns(RuntimeWarning, match="not process-pool safe"):
            orchestrator = _fleet(
                tmp_path,
                profiles=[custom],
                strategies=["sequential"],
                targets=("l2cap",),
                workers=2,
            )
        with orchestrator:
            report = orchestrator.run()
        events = read_events(orchestrator.run_dir / EVENTS_FILENAME)
        ends = [e for e in events if e["event"] == "campaign_end"]
        assert len(ends) == len(report.campaigns)
        assert ends[0]["packets_sent"] == report.campaigns[0].report.packets_sent
        assert all(e["worker"] == "orchestrator" for e in ends)


class TestCrashSafety:
    def test_finalize_abandoned_merges_and_marks_aborted(self, tmp_path):
        recorder = RunRecorder(tmp_path / "runs", workers=2)
        recorder.emit("run_start", campaigns=1)
        run_dir = recorder.run_dir
        # Simulate a kill: drop the recorder without close(); disarm the
        # gc finalizer so the explicit call below is the one under test.
        recorder._finalizer.detach()
        recorder._journal.close()
        del recorder
        _finalize_abandoned(str(run_dir))
        manifest = read_manifest(run_dir)
        assert manifest["status"] == "aborted"
        assert manifest["finished"] is not None
        events = read_events(run_dir / EVENTS_FILENAME)
        assert events[-1]["event"] == "run_abort"
        assert events[-1]["worker"] == "finalizer"

    def test_gc_finalizer_fires_for_leaked_recorder(self, tmp_path):
        recorder = RunRecorder(tmp_path / "runs", workers=1)
        recorder.emit("run_start", campaigns=0)
        run_dir = recorder.run_dir
        del recorder
        gc.collect()
        assert read_manifest(run_dir)["status"] == "aborted"
        kinds = [e["event"] for e in read_events(run_dir / EVENTS_FILENAME)]
        assert kinds[-1] == "run_abort"

    def test_finalize_is_noop_after_clean_close(self, tmp_path):
        recorder = RunRecorder(tmp_path / "runs", workers=1)
        run_dir = recorder.run_dir
        recorder.close()
        _finalize_abandoned(str(run_dir))
        assert read_manifest(run_dir)["status"] == "finished"


class TestWorkerProfiles:
    def test_profile_workers_dumps_cprofile_per_shard(self, tmp_path):
        orchestrator = _fleet(
            tmp_path,
            profiles=ALL_PROFILES[:1],
            strategies=["sequential"],
            targets=("l2cap",),
            workers=2,
            profile_workers=True,
        )
        with orchestrator:
            orchestrator.run()
        dumps = list((orchestrator.run_dir / PROFILES_DIRNAME).glob("*.prof"))
        assert dumps, "no cProfile dumps recorded"
        import pstats

        stats = pstats.Stats(str(dumps[0]))
        assert stats.total_calls > 0

    def test_profile_workers_requires_telemetry(self):
        with pytest.raises(ValueError, match="telemetry_dir"):
            FleetOrchestrator(
                profiles=ALL_PROFILES[:1],
                strategies=["sequential"],
                profile_workers=True,
            )


class TestFuzzLogBridge:
    def test_campaign_log_events_reconstruct_log_entries(self, tmp_path):
        from repro.telemetry import log_entries_from_events

        orchestrator = _fleet(
            tmp_path,
            profiles=ALL_PROFILES[:1],
            strategies=["sequential"],
            targets=("l2cap",),
            workers=1,
        )
        with orchestrator:
            report = orchestrator.run()
        events = read_events(orchestrator.run_dir / EVENTS_FILENAME)
        entries = log_entries_from_events(events, campaign=0)
        assert entries, "no campaign_log events bridged"
        phases = {entry.phase for entry in entries}
        assert "scan" in phases
        if report.findings:
            assert any(
                entry.level.value == "vulnerability" for entry in entries
            )
