"""Fault tolerance: supervised recovery, quarantine, checkpoint/resume.

The contract under test: faults change *how long* a fleet takes, never
*what* it computes. Every recovery path — worker crash, hang, corrupt
summary, transient corpus IO — must converge to the byte-identical
fault-free report, an interrupted run must resume to the same report
re-running only the missing campaigns, and a genuinely poisoned
campaign must be isolated (quarantined) without taking its shard-mates
or the run down with it.
"""

from __future__ import annotations

import json
import sqlite3

import pytest

from repro.core.config import FuzzConfig
from repro.core.faults import (
    FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    WorkerCrashError,
    seeded_plan,
)
from repro.core.fleet import FleetOrchestrator
from repro.core.runtime import (
    CHECKPOINTS_DIRNAME,
    FleetContext,
    FleetRuntime,
    SummaryDecodeError,
    SupervisionPolicy,
    decode_summary,
    encode_summary,
    iter_shard_specs,
    load_checkpoints,
    write_checkpoints,
)
from repro.telemetry import read_manifest
from repro.testbed.profiles import ALL_PROFILES

BUDGET = 600


def _orchestrator(workers: int = 2, **kwargs) -> FleetOrchestrator:
    return FleetOrchestrator(
        profiles=ALL_PROFILES[:2],
        strategies=("sequential",),
        fleet_seed=7,
        workers=workers,
        base_config=FuzzConfig(max_packets=BUDGET),
        **kwargs,
    )


def _rendered(report) -> str:
    return json.dumps(report.to_dict(), sort_keys=True)


@pytest.fixture(scope="module")
def baseline() -> str:
    """The fault-free report every recovery test must converge to."""
    with _orchestrator() as orchestrator:
        return _rendered(orchestrator.run())


@pytest.fixture(scope="module")
def sample_summary():
    """One real campaign summary for encode/checkpoint round-trips."""
    with _orchestrator(workers=1) as orchestrator:
        return orchestrator.run().campaigns[0].summary


def _plan(tmp_path, *faults: FaultSpec) -> FaultPlan:
    return FaultPlan(faults=tuple(faults), ledger_dir=str(tmp_path / "ledger"))


class TestChaosRecovery:
    """Each fault kind recovers to the byte-identical fault-free report."""

    def test_worker_crash_recovers(self, tmp_path, baseline):
        plan = _plan(tmp_path, FaultSpec(kind="crash", spec_index=0))
        with _orchestrator(fault_plan=plan) as orchestrator:
            report = orchestrator.run()
        assert _rendered(report) == baseline
        stats = orchestrator.last_supervision
        assert stats.worker_crashes >= 1
        assert stats.pool_restarts >= 1
        assert stats.retries >= 1
        assert not stats.quarantined

    def test_hang_trips_deadline_and_recovers(self, tmp_path, baseline):
        plan = _plan(
            tmp_path,
            FaultSpec(kind="hang", spec_index=0, hang_seconds=30.0),
        )
        policy = SupervisionPolicy(timeout_floor=1.5)
        with _orchestrator(
            fault_plan=plan, supervision=policy
        ) as orchestrator:
            report = orchestrator.run()
        assert _rendered(report) == baseline
        stats = orchestrator.last_supervision
        assert stats.timeouts >= 1
        assert stats.pool_restarts >= 1

    def test_corrupt_summary_blob_retried(self, tmp_path, baseline):
        plan = _plan(tmp_path, FaultSpec(kind="corrupt", spec_index=1))
        with _orchestrator(fault_plan=plan) as orchestrator:
            report = orchestrator.run()
        assert _rendered(report) == baseline
        stats = orchestrator.last_supervision
        assert stats.decode_failures >= 1
        assert stats.retries >= 1

    def test_transient_corpus_io_error_retried(self, tmp_path):
        from repro.corpus.findings import FindingDatabase
        from repro.corpus.store import CorpusStore

        contents = []
        reports = []
        for label, plan in (
            ("clean", None),
            (
                "chaos",
                _plan(tmp_path, FaultSpec(kind="corpus_io", spec_index=0)),
            ),
        ):
            root = tmp_path / f"corpus-{label}"
            with _orchestrator(
                corpus_dir=str(root), fault_plan=plan
            ) as orchestrator:
                reports.append(_rendered(orchestrator.run()))
                if plan is not None:
                    assert orchestrator.last_supervision.retries >= 1
            contents.append(
                (
                    {entry.entry_id for entry in CorpusStore(root).entries()},
                    {
                        record.bucket_id
                        for record in FindingDatabase(root).records()
                    },
                )
            )
        assert reports[0] == reports[1]
        # The fault fires before anything is written, so the retried
        # shard's write-back must not duplicate or drop corpus entries.
        assert contents[0] == contents[1]
        assert contents[0][0]

    def test_seeded_chaos_plan_is_deterministic(self, tmp_path):
        first = seeded_plan(1202, 16, FAULT_KINDS, tmp_path / "a")
        second = seeded_plan(1202, 16, FAULT_KINDS, tmp_path / "b")
        assert first.faults == second.faults
        assert seeded_plan(7, 16, FAULT_KINDS, tmp_path).faults != first.faults


class TestPoisonQuarantine:
    def test_poison_campaign_is_bisected_and_quarantined(self, tmp_path):
        # One campaign crashes its worker on *every* attempt. Shard-mates
        # must still complete; the poison ends up quarantined, not the run.
        poison = 2
        plan = _plan(
            tmp_path,
            FaultSpec(kind="crash", spec_index=poison, times=999),
        )
        policy = SupervisionPolicy(max_attempts=2, backoff_base=0.01)
        orchestrator = FleetOrchestrator(
            profiles=ALL_PROFILES[:4],
            strategies=("sequential",),
            fleet_seed=7,
            workers=2,
            batch=4,
            base_config=FuzzConfig(max_packets=BUDGET),
            fault_plan=plan,
            supervision=policy,
        )
        with orchestrator:
            report = orchestrator.run()
        stats = orchestrator.last_supervision
        assert stats.bisections >= 1
        assert [item.index for item in report.quarantined] == [poison]
        assert report.quarantined[0].attempts >= policy.max_attempts
        assert "crash" in report.quarantined[0].reason.lower() or "died" in (
            report.quarantined[0].reason.lower()
        )
        completed = {run.spec.index for run in report.campaigns}
        assert completed == {0, 1, 3}
        # The diagnostic survives serialisation.
        assert report.to_dict()["quarantined"][0]["index"] == poison
        assert "Quarantined campaigns" in report.to_markdown()


class TestCheckpointResume:
    def _params(self, tmp_path, **kwargs) -> dict:
        return dict(
            profiles=ALL_PROFILES[:4],
            strategies=("sequential",),
            fleet_seed=7,
            workers=1,
            batch=1,
            base_config=FuzzConfig(max_packets=BUDGET),
            telemetry_dir=str(tmp_path / "runs"),
            **kwargs,
        )

    def test_resume_after_abort_matches_uninterrupted_run(
        self, tmp_path, monkeypatch
    ):
        # Uninterrupted reference run (telemetry has no report effect).
        reference = FleetOrchestrator(
            **dict(self._params(tmp_path), telemetry_dir=None)
        )
        with reference:
            expected = _rendered(reference.run())

        # Campaign 3's shard kills the run mid-flight: the single-worker
        # inline path has no supervisor, so the injected crash aborts
        # the fleet after campaigns 0..2 checkpointed.
        plan = _plan(tmp_path, FaultSpec(kind="crash", spec_index=3))
        aborted = FleetOrchestrator(**self._params(tmp_path, fault_plan=plan))
        run_id = aborted.run_id
        with aborted:
            with pytest.raises(WorkerCrashError):
                aborted.run()
        run_dir = tmp_path / "runs" / run_id
        manifest = read_manifest(run_dir)
        assert manifest["status"] == "aborted"
        assert "WorkerCrashError" in manifest["failure_reason"]
        checkpoints = sorted(
            path.name for path in (run_dir / CHECKPOINTS_DIRNAME).iterdir()
        )
        assert checkpoints == [
            "campaign-000000.bin",
            "campaign-000001.bin",
            "campaign-000002.bin",
        ]

        # Resume: only the missing campaign is dispatched; the merged
        # report is byte-identical to the uninterrupted run.
        dispatched = []
        original = FleetRuntime.run_specs

        def spy(self, specs, batch=None, supervised=True):
            specs = tuple(specs)
            dispatched.append([spec[0] for spec in specs])
            return original(self, specs, batch=batch, supervised=supervised)

        monkeypatch.setattr(FleetRuntime, "run_specs", spy)
        resumed = FleetOrchestrator(
            **self._params(tmp_path, resume_run_id=run_id)
        )
        with resumed:
            report = resumed.run()
        assert dispatched == [[3]]
        assert _rendered(report) == expected
        manifest = read_manifest(run_dir)
        assert manifest["status"] == "finished"
        assert manifest["resumed"] is True

    def test_resume_requires_matching_fleet(self, tmp_path):
        plan = _plan(tmp_path, FaultSpec(kind="crash", spec_index=3))
        aborted = FleetOrchestrator(**self._params(tmp_path, fault_plan=plan))
        run_id = aborted.run_id
        with aborted:
            with pytest.raises(WorkerCrashError):
                aborted.run()
        with pytest.raises(ValueError, match="does not match"):
            FleetOrchestrator(
                **dict(
                    self._params(tmp_path, resume_run_id=run_id),
                    fleet_seed=8,
                )
            )

    def test_resume_needs_telemetry_and_existing_run(self, tmp_path):
        with pytest.raises(ValueError, match="telemetry_dir"):
            FleetOrchestrator(
                **dict(
                    self._params(tmp_path, resume_run_id="x"),
                    telemetry_dir=None,
                )
            )
        with pytest.raises(ValueError, match="no resumable run"):
            FleetOrchestrator(**self._params(tmp_path, resume_run_id="nope"))


class TestCheckpointFiles:
    def test_round_trip(self, tmp_path, sample_summary):
        write_checkpoints(
            tmp_path,
            [(5, "D1", "sequential", 7, "l2cap")],
            [encode_summary(sample_summary)],
        )
        restored = load_checkpoints(tmp_path)
        assert set(restored) == {5}
        assert restored[5] == sample_summary

    def test_truncated_checkpoint_skipped(self, tmp_path, sample_summary):
        write_checkpoints(
            tmp_path,
            [(5, "D1", "sequential", 7, "l2cap")],
            [encode_summary(sample_summary)],
        )
        checkpoint_dir = tmp_path / CHECKPOINTS_DIRNAME
        (checkpoint_dir / "campaign-000006.bin").write_bytes(
            encode_summary(sample_summary)[:10]
        )
        (checkpoint_dir / "campaign-garbage.bin").write_bytes(b"x")
        restored = load_checkpoints(tmp_path)
        assert set(restored) == {5}

    def test_missing_dir_is_empty(self, tmp_path):
        assert load_checkpoints(tmp_path / "nowhere") == {}


class TestSummaryDecodeError:
    def test_is_a_typed_value_error(self):
        from repro.errors import ReproError

        assert issubclass(SummaryDecodeError, ReproError)
        assert issubclass(SummaryDecodeError, ValueError)

    def test_empty_blob(self):
        with pytest.raises(SummaryDecodeError, match="empty"):
            decode_summary(b"")

    def test_truncated_blob(self, sample_summary):
        blob = encode_summary(sample_summary)
        with pytest.raises(SummaryDecodeError):
            decode_summary(blob[: len(blob) // 3])

    def test_trailing_garbage(self, sample_summary):
        blob = encode_summary(sample_summary)
        with pytest.raises(SummaryDecodeError, match="consumed"):
            decode_summary(blob + b"\x00\x01")


class TestBothPoolPaths:
    """Worker failure mid-shard recovers on process *and* thread pools."""

    def _context(self, plan: FaultPlan | None = None) -> FleetContext:
        return FleetContext(
            base_config=FuzzConfig(max_packets=BUDGET),
            armed=True,
            target_state_value="OPEN",
            corpus_dir=None,
            retain_trace=False,
            prior_visits=(),
            dictionary=(),
            fault_plan=plan,
        )

    def _specs(self):
        with _orchestrator() as orchestrator:
            return iter_shard_specs(orchestrator.specs())

    def test_thread_pool_worker_failure_recovers(self, tmp_path):
        specs = self._specs()
        plan = _plan(tmp_path, FaultSpec(kind="crash", spec_index=0))
        clean = FleetRuntime(self._context(), workers=2, use_processes=False)
        with clean:
            expected = clean.run_specs(specs)
        runtime = FleetRuntime(
            self._context(plan), workers=2, use_processes=False
        )
        with runtime:
            summaries = runtime.run_specs(specs)
        assert summaries == expected
        assert runtime.last_supervision.worker_crashes >= 1
        assert runtime.last_supervision.retries >= 1

    def test_process_pool_worker_failure_recovers(self, tmp_path):
        specs = self._specs()
        plan = _plan(tmp_path, FaultSpec(kind="crash", spec_index=0))
        clean = FleetRuntime(self._context(), workers=2, use_processes=True)
        with clean:
            expected = clean.run_specs(specs)
        runtime = FleetRuntime(
            self._context(plan), workers=2, use_processes=True
        )
        with runtime:
            summaries = runtime.run_specs(specs)
        assert summaries == expected
        assert runtime.last_supervision.pool_restarts >= 1

    def test_runtime_reusable_after_close(self):
        specs = self._specs()
        runtime = FleetRuntime(self._context(), workers=2)
        first = runtime.run_specs(specs)
        runtime.close()
        # A closed runtime lazily rebuilds its pool on the next dispatch.
        second = runtime.run_specs(specs)
        runtime.close()
        assert first == second


class TestSqliteWriteRetry:
    def _locked(self) -> sqlite3.OperationalError:
        return sqlite3.OperationalError("database is locked")

    def test_lock_contention_retried(self, tmp_path, monkeypatch):
        from repro.corpus import sqlite_backend

        monkeypatch.setattr(sqlite_backend.time, "sleep", lambda _s: None)
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise self._locked()
            return "ok"

        assert sqlite_backend._write_with_retry(flaky, "test") == "ok"
        assert len(attempts) == 3

    def test_non_lock_error_propagates_immediately(self, monkeypatch):
        from repro.corpus import sqlite_backend

        monkeypatch.setattr(sqlite_backend.time, "sleep", lambda _s: None)
        attempts = []

        def broken():
            attempts.append(1)
            raise sqlite3.OperationalError("no such table: entries")

        with pytest.raises(sqlite3.OperationalError, match="no such table"):
            sqlite_backend._write_with_retry(broken, "test")
        assert len(attempts) == 1

    def test_persistent_lock_gives_up(self, monkeypatch):
        from repro.corpus import sqlite_backend

        monkeypatch.setattr(sqlite_backend.time, "sleep", lambda _s: None)
        attempts = []

        def wedged():
            attempts.append(1)
            raise self._locked()

        with pytest.raises(sqlite3.OperationalError, match="locked"):
            sqlite_backend._write_with_retry(wedged, "test")
        assert len(attempts) == sqlite_backend.WRITE_RETRY_ATTEMPTS

    def test_add_entry_survives_transient_lock(self, tmp_path, monkeypatch):
        from repro.corpus import sqlite_backend
        from repro.corpus.entry import entry_from_packets
        from repro.l2cap.packets import echo_request

        monkeypatch.setattr(sqlite_backend.time, "sleep", lambda _s: None)
        backend = sqlite_backend.SqliteCorpusBackend(tmp_path)
        original = sqlite_backend.SqliteCorpusBackend._add_entry_once
        failures = iter([self._locked(), self._locked()])

        def flaky(self, entry):
            error = next(failures, None)
            if error is not None:
                raise error
            return original(self, entry)

        monkeypatch.setattr(
            sqlite_backend.SqliteCorpusBackend, "_add_entry_once", flaky
        )
        entry = entry_from_packets(
            packets=[echo_request(b"x", identifier=1)],
            unlocked=["OPEN"],
            covered=["OPEN"],
            device_id="D2",
            strategy="sequential",
            seed=7,
            armed=False,
            target="l2cap",
        )
        assert backend.add_entry(entry) is True
        assert backend.stats().entry_count == 1


class TestCliFaultFlags:
    def test_chaos_run_recovers_and_reports(self, capsys):
        from repro.cli import main

        code = main(
            [
                "fleet",
                "--profiles", "2",
                "--strategies", "sequential",
                "--workers", "2",
                "--budget", "300",
                "--chaos", "corrupt",
                "--format", "json",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "supervision:" in out
        assert "decode_failures=1" in out

    def test_unknown_chaos_kind_rejected(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="unknown --chaos kind"):
            main(["fleet", "--chaos", "gremlins", "--workers", "2"])

    def test_crash_chaos_needs_multiple_workers(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="--workers >= 2"):
            main(["fleet", "--chaos", "crash"])

    def test_resume_requires_telemetry(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="--resume requires --telemetry"):
            main(["fleet", "--resume", "some-run"])

    def test_abort_exits_two_with_partial_summary(
        self, tmp_path, monkeypatch, capsys
    ):
        from repro.cli import main
        from repro.core import fleet as fleet_module

        def explode(*_args, **_kwargs):
            raise RuntimeError("synthetic merge failure")

        runs_dir = tmp_path / "runs"
        with monkeypatch.context() as patched:
            patched.setattr(fleet_module, "merge_reports", explode)
            code = main(
                [
                    "fleet",
                    "--profiles", "2",
                    "--strategies", "sequential",
                    "--workers", "1",
                    "--budget", "300",
                    "--telemetry", str(runs_dir),
                ]
            )
        out = capsys.readouterr().out
        assert code == 2
        assert "fleet run aborted" in out
        assert "RuntimeError" in out
        assert "resume with:" in out
        run_dir = next(runs_dir.iterdir())
        manifest = read_manifest(run_dir)
        assert manifest["status"] == "aborted"
        assert "synthetic merge failure" in manifest["failure_reason"]

        # The printed resume incantation completes the run: exit 0.
        code = main(
            [
                "fleet",
                "--profiles", "2",
                "--strategies", "sequential",
                "--workers", "1",
                "--budget", "300",
                "--telemetry", str(runs_dir),
                "--resume", run_dir.name,
            ]
        )
        assert code == 0
        assert read_manifest(run_dir)["status"] == "finished"
