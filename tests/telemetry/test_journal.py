"""Tests for the append-only event journal and its segment merge."""

from __future__ import annotations

import json
import multiprocessing
import threading

import pytest

from repro.telemetry import (
    EVENT_SCHEMA_VERSION,
    EVENTS_FILENAME,
    SEGMENTS_DIRNAME,
    JournalWriter,
    merge_segments,
    read_events,
    scan_events,
    shard_journal,
)


class TestJournalWriter:
    def test_envelope_fields(self, tmp_path):
        writer = JournalWriter(tmp_path / "j.jsonl", run_id="r1", worker="w1")
        record = writer.emit("campaign_start", campaign=3, device="D1")
        writer.close()
        assert record["v"] == EVENT_SCHEMA_VERSION
        assert record["seq"] == 0
        assert record["event"] == "campaign_start"
        assert record["run_id"] == "r1"
        assert record["worker"] == "w1"
        assert record["campaign"] == 3
        assert record["device"] == "D1"
        (line,) = (tmp_path / "j.jsonl").read_text().splitlines()
        assert json.loads(line) == record

    def test_sequence_and_timestamps_are_monotonic(self, tmp_path):
        writer = JournalWriter(tmp_path / "j.jsonl", run_id="r1", worker="w1")
        records = [writer.emit("tick") for _ in range(50)]
        writer.close()
        assert [record["seq"] for record in records] == list(range(50))
        timestamps = [record["ts"] for record in records]
        assert timestamps == sorted(timestamps)

    def test_payload_cannot_shadow_envelope(self, tmp_path):
        writer = JournalWriter(tmp_path / "j.jsonl", run_id="r1", worker="w1")
        with pytest.raises(ValueError, match="collide"):
            writer.emit("bad", seq=9, run_id="other")

    def test_emit_after_close_raises(self, tmp_path):
        writer = JournalWriter(tmp_path / "j.jsonl", run_id="r1", worker="w1")
        writer.emit("tick")
        writer.close()
        with pytest.raises(ValueError, match="closed"):
            writer.emit("tick")

    def test_every_event_is_flushed_immediately(self, tmp_path):
        writer = JournalWriter(tmp_path / "j.jsonl", run_id="r1", worker="w1")
        writer.emit("tick", n=1)
        # Readable before close: a killed run keeps every completed line.
        assert read_events(tmp_path / "j.jsonl")[0]["n"] == 1
        writer.close()


class TestReaders:
    def test_read_events_missing_file_is_empty(self, tmp_path):
        assert read_events(tmp_path / "absent.jsonl") == []

    def test_torn_trailing_line_is_skipped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        writer = JournalWriter(path, run_id="r1", worker="w1")
        writer.emit("tick", n=1)
        writer.emit("tick", n=2)
        writer.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"v": 1, "seq": 2, "eve')  # killed mid-write
        events = read_events(path)
        assert [event["n"] for event in events] == [1, 2]

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        lines = [json.dumps({"seq": i, "event": "tick"}) for i in range(5)]
        lines[1] = "{broken"
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="corrupt journal line 2"):
            read_events(path)


class TestMergeSegments:
    def _run_dir(self, tmp_path):
        run_dir = tmp_path / "run"
        (run_dir / SEGMENTS_DIRNAME).mkdir(parents=True)
        return run_dir

    def test_merge_appends_sorted_and_removes_segments(self, tmp_path):
        run_dir = self._run_dir(tmp_path)
        for name, count in (("worker-b.jsonl", 3), ("worker-a.jsonl", 2)):
            writer = JournalWriter(
                run_dir / SEGMENTS_DIRNAME / name, run_id="r1", worker=name
            )
            for n in range(count):
                writer.emit("tick", n=n)
            writer.close()
        merged = merge_segments(run_dir)
        assert len(merged) == 5
        on_disk = read_events(run_dir / EVENTS_FILENAME)
        assert on_disk == merged
        timestamps = [event["ts"] for event in on_disk]
        assert timestamps == sorted(timestamps)
        # Each writer's own order survives the global sort.
        for name in ("worker-a.jsonl", "worker-b.jsonl"):
            seqs = [e["seq"] for e in on_disk if e["worker"] == name]
            assert seqs == sorted(seqs)
        assert list((run_dir / SEGMENTS_DIRNAME).iterdir()) == []

    def test_merge_is_append_only(self, tmp_path):
        run_dir = self._run_dir(tmp_path)
        orchestrator = JournalWriter(
            run_dir / EVENTS_FILENAME, run_id="r1", worker="orchestrator"
        )
        orchestrator.emit("run_start")
        writer = JournalWriter(
            run_dir / SEGMENTS_DIRNAME / "w.jsonl", run_id="r1", worker="w"
        )
        writer.emit("tick")
        writer.close()
        merge_segments(run_dir)
        # The orchestrator's open O_APPEND handle still lands after the
        # merged events — the merge never rewrites the file under it.
        orchestrator.emit("run_end")
        orchestrator.close()
        events = [e["event"] for e in read_events(run_dir / EVENTS_FILENAME)]
        assert events == ["run_start", "tick", "run_end"]

    def test_merge_without_segments_dir_is_noop(self, tmp_path):
        assert merge_segments(tmp_path / "nowhere") == []

    def test_scan_events_includes_live_segments(self, tmp_path):
        run_dir = self._run_dir(tmp_path)
        orchestrator = JournalWriter(
            run_dir / EVENTS_FILENAME, run_id="r1", worker="orchestrator"
        )
        orchestrator.emit("run_start")
        orchestrator.close()
        live = JournalWriter(
            run_dir / SEGMENTS_DIRNAME / "w.jsonl", run_id="r1", worker="w"
        )
        live.emit("campaign_start", campaign=0)
        # Segment intentionally not closed / not merged: a worker
        # mid-shard. The live view must still see its events.
        events = scan_events(run_dir)
        assert [e["event"] for e in events] == ["run_start", "campaign_start"]
        live.close()


def _segment_worker(run_dir: str, worker: int, count: int) -> None:
    writer = shard_journal(run_dir, run_id="r1", shard_key=worker)
    for n in range(count):
        writer.emit("tick", n=n, origin=worker)
    writer.close()


class TestConcurrentWriters:
    def test_multiprocess_segments_merge_without_torn_lines(self, tmp_path):
        """Four processes × 200 events each: exact counts, valid JSON."""
        count = 200
        context = multiprocessing.get_context("spawn")
        procs = [
            context.Process(
                target=_segment_worker, args=(str(tmp_path), worker, count)
            )
            for worker in range(4)
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join()
            assert proc.exitcode == 0
        run_dir = tmp_path / "r1"
        merged = merge_segments(run_dir)
        assert len(merged) == 4 * count
        by_origin: dict[int, list[int]] = {}
        for event in merged:
            by_origin.setdefault(event["origin"], []).append(event["n"])
        assert set(by_origin) == {0, 1, 2, 3}
        for ns in by_origin.values():
            assert sorted(ns) == list(range(count))
        # Round-trip through disk parses cleanly line by line.
        raw = (run_dir / EVENTS_FILENAME).read_text().splitlines()
        assert len(raw) == 4 * count
        for line in raw:
            json.loads(line)

    def test_threaded_writers_on_distinct_segments(self, tmp_path):
        run_dir = tmp_path / "run"
        count = 300

        def work(worker: int) -> None:
            writer = JournalWriter(
                run_dir / SEGMENTS_DIRNAME / f"t{worker}.jsonl",
                run_id="r1",
                worker=f"t{worker}",
            )
            for n in range(count):
                writer.emit("tick", n=n)
            writer.close()

        threads = [threading.Thread(target=work, args=(i,)) for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        merged = merge_segments(run_dir)
        assert len(merged) == 4 * count
