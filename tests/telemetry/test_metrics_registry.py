"""Tests for the metrics registry: series, snapshots, exposition, merge."""

from __future__ import annotations

import json

import pytest

from repro.telemetry import METRICS_SCHEMA_VERSION, MetricsRegistry


class TestCounters:
    def test_inc_accumulates_per_label_set(self):
        registry = MetricsRegistry()
        registry.inc("repro_packets_sent_total", 100, target="l2cap")
        registry.inc("repro_packets_sent_total", 50, target="l2cap")
        registry.inc("repro_packets_sent_total", 7, target="sdp")
        snapshot = registry.snapshot()
        rows = snapshot["counters"]["repro_packets_sent_total"]
        assert rows == [
            {"labels": {"target": "l2cap"}, "value": 150},
            {"labels": {"target": "sdp"}, "value": 7},
        ]

    def test_counters_cannot_decrease(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="cannot decrease"):
            registry.inc("repro_campaigns_total", -1)

    def test_label_order_does_not_fork_series(self):
        registry = MetricsRegistry()
        registry.inc("m", 1, a="x", b="y")
        registry.inc("m", 1, b="y", a="x")
        (row,) = registry.snapshot()["counters"]["m"]
        assert row["value"] == 2


class TestGauges:
    def test_set_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        registry.set_gauge("repro_fleet_wall_seconds", 1.5)
        registry.set_gauge("repro_fleet_wall_seconds", 2.5)
        (row,) = registry.snapshot()["gauges"]["repro_fleet_wall_seconds"]
        assert row["value"] == 2.5


class TestHistograms:
    def test_observations_land_in_correct_buckets(self):
        registry = MetricsRegistry()
        for value in (0.01, 0.2, 0.2, 99.0):
            registry.observe("lat", value, buckets=(0.1, 0.5, 1.0))
        (row,) = registry.snapshot()["histograms"]["lat"]
        assert row["buckets"] == [[0.1, 1], [0.5, 2], [1.0, 0], ["+Inf", 1]]
        assert row["count"] == 4
        assert row["sum"] == pytest.approx(99.41)

    def test_bucket_layout_fixed_by_first_observation(self):
        registry = MetricsRegistry()
        registry.observe("lat", 0.3, buckets=(0.1, 1.0))
        registry.observe("lat", 0.7)  # later calls may omit the layout
        (row,) = registry.snapshot()["histograms"]["lat"]
        assert [upper for upper, _ in row["buckets"]] == [0.1, 1.0, "+Inf"]
        assert row["count"] == 2


class TestSnapshot:
    def test_snapshot_is_versioned_and_json_safe(self):
        registry = MetricsRegistry()
        registry.inc("c", 1)
        registry.set_gauge("g", 0.5)
        registry.observe("h", 0.2)
        snapshot = registry.snapshot()
        assert snapshot["schema"] == METRICS_SCHEMA_VERSION
        json.loads(registry.to_json())  # round-trips

    def test_to_json_is_deterministic(self):
        def build():
            registry = MetricsRegistry()
            registry.inc("c", 3, target="l2cap")
            registry.inc("c", 1, target="sdp")
            registry.set_gauge("g", 7, worker="2")
            return registry.to_json()

        assert build() == build()


class TestPrometheus:
    def test_counter_and_gauge_exposition(self):
        registry = MetricsRegistry()
        registry.inc("repro_campaigns_total", 4, target="l2cap")
        registry.set_gauge("repro_merged_states", 12, target="l2cap")
        text = registry.to_prometheus()
        assert "# TYPE repro_campaigns_total counter" in text
        assert 'repro_campaigns_total{target="l2cap"} 4' in text
        assert "# TYPE repro_merged_states gauge" in text
        assert 'repro_merged_states{target="l2cap"} 12' in text
        assert text.endswith("\n")

    def test_histogram_exposition_is_cumulative(self):
        registry = MetricsRegistry()
        for value in (0.05, 0.2, 9.0):
            registry.observe("repro_shard_seconds", value, buckets=(0.1, 1.0))
        text = registry.to_prometheus()
        assert 'repro_shard_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_shard_seconds_bucket{le="1"} 2' in text
        assert 'repro_shard_seconds_bucket{le="+Inf"} 3' in text
        assert "repro_shard_seconds_count 3" in text

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.inc("c", 1, path='we"ird\\path\nx')
        line = registry.to_prometheus().splitlines()[1]
        assert line == 'c{path="we\\"ird\\\\path\\nx"} 1'


class TestMergeSnapshot:
    def test_counters_add_gauges_take_latest(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        left.inc("c", 2, target="l2cap")
        left.set_gauge("g", 1.0)
        right.inc("c", 3, target="l2cap")
        right.set_gauge("g", 9.0)
        left.merge_snapshot(right.snapshot())
        snapshot = left.snapshot()
        assert snapshot["counters"]["c"][0]["value"] == 5
        assert snapshot["gauges"]["g"][0]["value"] == 9.0

    def test_histograms_add_bucket_by_bucket(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        left.observe("h", 0.05, buckets=(0.1, 1.0))
        right.observe("h", 0.5, buckets=(0.1, 1.0))
        right.observe("h", 5.0)
        left.merge_snapshot(right.snapshot())
        (row,) = left.snapshot()["histograms"]["h"]
        assert row["buckets"] == [[0.1, 1], [1.0, 1], ["+Inf", 1]]
        assert row["count"] == 3

    def test_unknown_schema_version_raises(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="schema version"):
            registry.merge_snapshot({"schema": 99})

    def test_bucket_layout_mismatch_raises(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        left.observe("h", 0.5, buckets=(0.1, 1.0))
        right.observe("h", 0.5, buckets=(0.25, 2.0))
        with pytest.raises(ValueError, match="bucket layout mismatch"):
            left.merge_snapshot(right.snapshot())
