"""Satellite coverage: mid-write manifest tolerance and --json output."""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.cli import main
from repro.telemetry import (
    list_runs,
    load_manifest,
    resolve_run,
    run_info,
    run_info_dict,
    run_status,
    status_to_dict,
)

MANIFEST = {
    "run_id": "20260101-000000-aaaaaa",
    "status": "aborted",
    "started": "2026-01-01T00:00:00+00:00",
    "finished": "2026-01-01T00:00:09+00:00",
    "workers": 2,
    "campaigns": 4,
    "packets": 1234,
    "findings": 1,
    "failure_reason": "RuntimeError: pool exploded",
    "resumed": True,
    "fleet_signature": "deadbeef",
}


def write_manifest(run_dir, manifest=MANIFEST) -> None:
    run_dir.mkdir(parents=True, exist_ok=True)
    (run_dir / "run.json").write_text(json.dumps(manifest), encoding="utf-8")


class TestLoadManifest:
    def test_missing_file_is_none_immediately(self, tmp_path):
        start = time.monotonic()
        assert load_manifest(tmp_path / "nope") is None
        assert time.monotonic() - start < 0.1

    def test_torn_write_retried_until_readable(self, tmp_path):
        run_dir = tmp_path / "run"
        run_dir.mkdir()
        (run_dir / "run.json").write_text('{"run_id": "x", "sta')

        def finish_write():
            time.sleep(0.06)
            write_manifest(run_dir)

        fixer = threading.Thread(target=finish_write)
        fixer.start()
        try:
            manifest = load_manifest(run_dir, attempts=20, delay=0.02)
        finally:
            fixer.join()
        assert manifest is not None
        assert manifest["run_id"] == MANIFEST["run_id"]

    def test_persistent_garbage_gives_up(self, tmp_path):
        run_dir = tmp_path / "run"
        run_dir.mkdir()
        (run_dir / "run.json").write_text("{never json")
        assert load_manifest(run_dir, attempts=2, delay=0.01) is None


class TestResolveRun:
    def test_tolerates_directory_ahead_of_manifest(self, tmp_path):
        """A run dir created before its run.json lands still resolves."""
        run_dir = tmp_path / "20260101-000000-aaaaaa"
        run_dir.mkdir()

        def late_manifest():
            time.sleep(0.04)
            write_manifest(run_dir)

        writer = threading.Thread(target=late_manifest)
        writer.start()
        try:
            resolved = resolve_run(tmp_path, run_dir.name)
        finally:
            writer.join()
        assert resolved == run_dir

    def test_genuinely_missing_run_still_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            resolve_run(tmp_path, "20991231-000000-ffffff")


class TestSerializers:
    def test_run_info_surfaces_failure_resume_and_signature(self, tmp_path):
        run_dir = tmp_path / MANIFEST["run_id"]
        write_manifest(run_dir)
        info = list_runs(tmp_path)[0]
        assert info.failure_reason == "RuntimeError: pool exploded"
        assert info.resumed is True
        assert info.fleet_signature == "deadbeef"

        rendered = run_info_dict(info)
        assert rendered["path"] == str(run_dir)
        assert rendered["failure_reason"] == info.failure_reason
        json.dumps(rendered)  # fully JSON-safe

    def test_run_status_carries_the_same_fields(self, tmp_path):
        run_dir = tmp_path / MANIFEST["run_id"]
        write_manifest(run_dir)
        status = run_status(run_dir)
        assert status["failure_reason"] == MANIFEST["failure_reason"]
        assert status["resumed"] is True
        assert status["fleet_signature"] == "deadbeef"
        json.dumps(status_to_dict(status))

    def test_run_info_matches_manifest_round_trip(self, tmp_path):
        run_dir = tmp_path / MANIFEST["run_id"]
        write_manifest(run_dir)
        info = run_info(MANIFEST, run_dir)
        assert run_info_dict(info)["run_id"] == MANIFEST["run_id"]


class TestRunsCliJson:
    def test_runs_list_json_is_machine_readable(self, tmp_path, capsys):
        write_manifest(tmp_path / MANIFEST["run_id"])
        assert main(["runs", "list", "--root", str(tmp_path), "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert rows[0]["run_id"] == MANIFEST["run_id"]
        assert rows[0]["failure_reason"] == MANIFEST["failure_reason"]
        assert rows[0]["resumed"] is True

    def test_runs_list_table_shows_failure_and_resume(
        self, tmp_path, capsys
    ):
        write_manifest(tmp_path / MANIFEST["run_id"])
        assert main(["runs", "list", "--root", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "(resumed)" in out
        assert "failure: RuntimeError: pool exploded" in out

    def test_runs_show_json_is_the_status_structure(self, tmp_path, capsys):
        write_manifest(tmp_path / MANIFEST["run_id"])
        assert (
            main(
                [
                    "runs",
                    "show",
                    MANIFEST["run_id"],
                    "--root",
                    str(tmp_path),
                    "--json",
                ]
            )
            == 0
        )
        status = json.loads(capsys.readouterr().out)
        assert status["run_id"] == MANIFEST["run_id"]
        assert status["fleet_signature"] == "deadbeef"
        assert status["workers"] == {}
