"""Shared fixtures: wired-up devices, links and queues."""

from __future__ import annotations

import pytest

from repro.analysis.sniffer import PacketSniffer
from repro.core.packet_queue import PacketQueue
from repro.hci.transport import SimClock, VirtualLink
from repro.stack.device import DeviceMeta, VirtualDevice
from repro.stack.services import ServiceDirectory, ServiceRecord
from repro.stack.vendors import BLUEDROID, VendorPersonality
from repro.l2cap.constants import Psm


DEFAULT_META = DeviceMeta(
    mac_address="AA:BB:CC:DD:EE:FF",
    name="test-device",
    device_class="smartphone",
)


def make_services(
    open_passive: bool = True,
    open_initiating: bool = True,
    paired_extra: bool = True,
) -> ServiceDirectory:
    """A small catalogue: SDP (passive), AVDTP (initiating), RFCOMM (paired)."""
    records = []
    if open_passive:
        records.append(ServiceRecord(Psm.SDP, "SDP"))
    if open_initiating:
        records.append(
            ServiceRecord(Psm.AVDTP, "AVDTP", initiates_config=True)
        )
    if paired_extra:
        records.append(ServiceRecord(Psm.RFCOMM, "RFCOMM", requires_pairing=True))
    return ServiceDirectory(records)


def make_rig(
    personality: VendorPersonality = BLUEDROID,
    services: ServiceDirectory | None = None,
    vulnerabilities: tuple = (),
    armed: bool = True,
    tx_cost: float = 0.001,
):
    """Build a (device, link, queue) triple wired together."""
    clock = SimClock()
    device = VirtualDevice(
        meta=DEFAULT_META,
        personality=personality,
        services=services if services is not None else make_services(),
        vulnerabilities=vulnerabilities,
        clock=clock,
        armed=armed,
    )
    link = VirtualLink(clock=clock, tx_cost=tx_cost)
    device.attach_to(link)
    queue = PacketQueue(link, PacketSniffer())
    return device, link, queue


@pytest.fixture
def rig():
    """Default BlueDroid-flavoured rig."""
    return make_rig()


@pytest.fixture
def device(rig):
    return rig[0]


@pytest.fixture
def link(rig):
    return rig[1]


@pytest.fixture
def queue(rig):
    return rig[2]
